package exec

import (
	"math"
	"math/rand"
	"testing"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// randBatch builds a batch of ncols columns: col0 int group key with few
// distinct values, col1 int, col2 float, col3 string; an optional selection
// vector keeps a random subset.
func randBatch(r *rand.Rand, rows int, withSel bool) *Batch {
	b := storage.GetBatch(4)
	vals := make([]types.Value, 4)
	for i := 0; i < rows; i++ {
		vals[0] = types.NewInt64(int64(r.Intn(4)))
		vals[1] = types.NewInt64(int64(r.Intn(100) - 50))
		vals[2] = types.NewFloat64(float64(r.Intn(1000)) / 8)
		vals[3] = types.NewString([]string{"x", "y", "z"}[r.Intn(3)])
		b.AppendRow(schema.RowID(i), vals)
	}
	if withSel {
		var sel []int32
		for i := 0; i < rows; i++ {
			if r.Intn(3) > 0 {
				sel = append(sel, int32(i))
			}
		}
		b.Sel = sel
	}
	return b
}

// TestObserveBatchMatchesObserve feeds identical data to the row-at-a-time
// Observe path and the vectorized ObserveBatch path — grouped and
// ungrouped, with and without a selection vector, across multiple batches —
// and requires equal results (floats within ulps: the typed fold sums each
// batch before merging, so cross-batch association differs).
func TestObserveBatchMatchesObserve(t *testing.T) {
	specs := []AggSpec{
		{Func: AggSum, Col: 1}, {Func: AggCount}, {Func: AggMin, Col: 2},
		{Func: AggMax, Col: 2}, {Func: AggAvg, Col: 1}, {Func: AggSum, Col: 2},
		{Func: AggMin, Col: 3}, {Func: AggMax, Col: 3},
	}
	for _, tc := range []struct {
		name    string
		groupBy []int
		withSel bool
	}{
		{"global", nil, false},
		{"global-sel", nil, true},
		{"grouped", []int{0}, false},
		{"grouped-sel", []int{0}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(17))
			rowAgg := NewAggregator(tc.groupBy, specs)
			batchAgg := NewAggregator(tc.groupBy, specs)
			for bi := 0; bi < 5; bi++ {
				b := randBatch(r, 100+bi, tc.withSel)
				b.Selected(func(row int) bool {
					tuple := make([]types.Value, len(b.Vecs))
					for i := range b.Vecs {
						tuple[i] = b.Vecs[i].Value(row)
					}
					rowAgg.Observe(tuple)
					return true
				})
				batchAgg.ObserveBatch(b)
				storage.PutBatch(b)
			}
			got, want := batchAgg.Rel(nil), rowAgg.Rel(nil)
			if len(got.Tuples) != len(want.Tuples) {
				t.Fatalf("groups: %d, want %d", len(got.Tuples), len(want.Tuples))
			}
			for i := range want.Tuples {
				for k := range want.Tuples[i] {
					g, w := got.Tuples[i][k], want.Tuples[i][k]
					if g.K == types.KindFloat64 && w.K == types.KindFloat64 {
						if d := math.Abs(g.Float() - w.Float()); d > 1e-9*math.Max(1, math.Abs(w.Float())) {
							t.Fatalf("row %d col %d: %v, want %v", i, k, g, w)
						}
						continue
					}
					if types.Compare(g, w) != 0 {
						t.Fatalf("row %d col %d: %v, want %v", i, k, g, w)
					}
				}
			}
		})
	}
}

// TestObserveBatchEmpty pins the edge cases: an empty batch and a batch
// whose selection vector is empty contribute nothing.
func TestObserveBatchEmpty(t *testing.T) {
	specs := []AggSpec{{Func: AggSum, Col: 1}, {Func: AggCount}}
	a := NewAggregator(nil, specs)
	b := storage.GetBatch(2)
	a.ObserveBatch(b)
	b.AppendRow(1, []types.Value{types.NewInt64(1), types.NewInt64(2)})
	b.Sel = []int32{}
	a.ObserveBatch(b)
	storage.PutBatch(b)
	rel := a.Rel(nil)
	if len(rel.Tuples) != 1 || rel.Tuples[0][1].Int() != 0 {
		t.Fatalf("rel = %+v", rel.Tuples)
	}
	if !rel.Tuples[0][0].IsNull() {
		t.Fatalf("sum over zero rows = %v, want NULL", rel.Tuples[0][0])
	}
}
