package exec

import (
	"fmt"
	"time"

	"proteus/internal/cost"
	"proteus/internal/types"
)

// AggFunc enumerates the aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// String names the function.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return "?"
}

// AggSpec is one aggregate over a tuple position.
type AggSpec struct {
	Func AggFunc
	Col  int // ignored for COUNT
}

// aggState accumulates one group's aggregates.
type aggState struct {
	sums   []types.Value
	counts []int64
	mins   []types.Value
	maxs   []types.Value
}

func newAggState(n int) *aggState {
	return &aggState{
		sums:   make([]types.Value, n),
		counts: make([]int64, n),
		mins:   make([]types.Value, n),
		maxs:   make([]types.Value, n),
	}
}

func (s *aggState) observe(t []types.Value, specs []AggSpec) {
	for i, sp := range specs {
		s.counts[i]++
		if sp.Func == AggCount {
			continue
		}
		s.observeVal(i, t[sp.Col])
	}
}

// observeVal folds one non-COUNT aggregate input value into slot i.
func (s *aggState) observeVal(i int, v types.Value) {
	s.sums[i] = types.Add(s.sums[i], v)
	if s.mins[i].IsNull() || types.Compare(v, s.mins[i]) < 0 {
		s.mins[i] = v
	}
	if s.maxs[i].IsNull() || types.Compare(v, s.maxs[i]) > 0 {
		s.maxs[i] = v
	}
}

func (s *aggState) finish(specs []AggSpec) []types.Value {
	out := make([]types.Value, len(specs))
	for i, sp := range specs {
		switch sp.Func {
		case AggSum:
			out[i] = s.sums[i]
		case AggCount:
			out[i] = types.NewInt64(s.counts[i])
		case AggMin:
			out[i] = s.mins[i]
		case AggMax:
			out[i] = s.maxs[i]
		case AggAvg:
			if s.counts[i] > 0 {
				out[i] = types.NewFloat64(s.sums[i].Float() / float64(s.counts[i]))
			}
		}
	}
	return out
}

func aggCols(r Rel, groupBy []int, specs []AggSpec) []string {
	cols := make([]string, 0, len(groupBy)+len(specs))
	for _, g := range groupBy {
		if g < len(r.Cols) {
			cols = append(cols, r.Cols[g])
		} else {
			cols = append(cols, fmt.Sprintf("g%d", g))
		}
	}
	for _, sp := range specs {
		cols = append(cols, sp.Func.String())
	}
	return cols
}

// HashAggregate groups tuples by the groupBy positions and computes the
// aggregates. An empty groupBy produces a single global group (even over
// zero input rows, matching SQL aggregate semantics).
func HashAggregate(r Rel, groupBy []int, specs []AggSpec) (Rel, cost.Observation) {
	start := time.Now()
	groups := map[uint64][]*groupEntry{}
	var order []*groupEntry
	for _, t := range r.Tuples {
		h := joinKey(t, groupBy)
		var ge *groupEntry
		for _, cand := range groups[h] {
			if keysEqual(t, cand.key, groupBy, groupBy) {
				ge = cand
				break
			}
		}
		if ge == nil {
			key := make([]types.Value, len(t))
			copy(key, t)
			ge = &groupEntry{key: key, state: newAggState(len(specs))}
			groups[h] = append(groups[h], ge)
			order = append(order, ge)
		}
		ge.state.observe(t, specs)
	}
	if len(groupBy) == 0 && len(order) == 0 {
		order = append(order, &groupEntry{key: nil, state: newAggState(len(specs))})
	}
	out := Rel{Cols: aggCols(r, groupBy, specs)}
	for _, ge := range order {
		row := make([]types.Value, 0, len(groupBy)+len(specs))
		for _, g := range groupBy {
			row = append(row, ge.key[g])
		}
		row = append(row, ge.state.finish(specs)...)
		out.Tuples = append(out.Tuples, row)
	}
	obs := cost.Observation{
		Op:       cost.OpAggregate,
		Variant:  cost.AggHash,
		Features: cost.AggFeatures(r.NumRows(), out.NumRows(), r.RowBytes()),
		Latency:  time.Since(start),
	}
	return out, obs
}

type groupEntry struct {
	key   []types.Value
	state *aggState
}

// SortedAggregate aggregates input already sorted by the groupBy positions
// in one streaming pass (the sort-aggregate variant of Table 1).
func SortedAggregate(r Rel, groupBy []int, specs []AggSpec) (Rel, cost.Observation) {
	start := time.Now()
	out := Rel{Cols: aggCols(r, groupBy, specs)}
	var curKey []types.Value
	var state *aggState
	flush := func() {
		if state == nil {
			return
		}
		row := make([]types.Value, 0, len(groupBy)+len(specs))
		for _, g := range groupBy {
			row = append(row, curKey[g])
		}
		row = append(row, state.finish(specs)...)
		out.Tuples = append(out.Tuples, row)
	}
	for _, t := range r.Tuples {
		if state == nil || !keysEqual(t, curKey, groupBy, groupBy) {
			flush()
			curKey = append([]types.Value(nil), t...)
			state = newAggState(len(specs))
		}
		state.observe(t, specs)
	}
	flush()
	if len(groupBy) == 0 && len(out.Tuples) == 0 {
		out.Tuples = append(out.Tuples, newAggState(len(specs)).finish(specs))
	}
	obs := cost.Observation{
		Op:       cost.OpAggregate,
		Variant:  cost.AggSort,
		Features: cost.AggFeatures(r.NumRows(), out.NumRows(), r.RowBytes()),
		Latency:  time.Since(start),
	}
	return out, obs
}

// Sort orders tuples by the key positions, reporting the sort cost.
func Sort(r Rel, keys []int) (Rel, cost.Observation) {
	start := time.Now()
	out := SortBy(r, keys)
	obs := cost.Observation{
		Op:       cost.OpSort,
		Features: cost.SortFeatures(r.NumRows(), r.RowBytes()),
		Latency:  time.Since(start),
	}
	return out, obs
}
