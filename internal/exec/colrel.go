package exec

import (
	"proteus/internal/storage"
	"proteus/internal/types"
)

// ColRel is a materialized columnar relation: the batch-native counterpart
// of Rel used by the vectorized join and group-by engine. Vectors are
// owned, decoded (EncNone) storage.Vec buffers, so scan batches borrowed
// from store arrays can be accumulated safely past the batch callback and
// payload columns can be gathered by row index without boxing.
type ColRel struct {
	// Cols labels the column positions, as in Rel.
	Cols []string
	// Vecs holds one decoded vector per column, each rows long.
	Vecs []storage.Vec
	rows int
}

// NewColRel returns an empty columnar relation with the given labels.
func NewColRel(cols []string) ColRel {
	return ColRel{Cols: cols, Vecs: make([]storage.Vec, len(cols))}
}

// NumRows reports the row count.
func (c *ColRel) NumRows() int { return c.rows }

// SetRows declares the row count for relations assembled by copying vector
// headers directly (column projections); every vector must be n rows.
func (c *ColRel) SetRows(n int) { c.rows = n }

// AppendBatch appends the selected rows of a scan batch column-wise,
// decoding encoded vectors. The batch's arrays are copied, never borrowed.
func (c *ColRel) AppendBatch(b *storage.Batch) {
	n := b.Len()
	if n == 0 {
		return
	}
	for i := range c.Vecs {
		c.Vecs[i].AppendVec(&b.Vecs[i], b.Sel)
	}
	c.rows += n
}

// AppendCols appends every row of another columnar relation with the same
// shape.
func (c *ColRel) AppendCols(o *ColRel) {
	if o.rows == 0 {
		return
	}
	for i := range c.Vecs {
		c.Vecs[i].AppendVec(&o.Vecs[i], nil)
	}
	c.rows += o.rows
}

// Gather appends the rows of o at positions idx (with repetition, in idx
// order) — the late-materialization primitive of the batch hash join.
func (c *ColRel) Gather(o *ColRel, idx []int32) {
	if len(idx) == 0 {
		return
	}
	for i := range c.Vecs {
		c.Vecs[i].AppendVec(&o.Vecs[i], idx)
	}
	c.rows += len(idx)
}

// ColRelFromRel boxes a row relation into columnar form.
func ColRelFromRel(r Rel) ColRel {
	c := NewColRel(r.Cols)
	for _, t := range r.Tuples {
		for i := range c.Vecs {
			c.Vecs[i].Append(t[i])
		}
	}
	c.rows = len(r.Tuples)
	return c
}

// Rel materializes the columnar relation as boxed tuples, for callers that
// still speak the row contract (result presentation, the legacy operator
// fallbacks, differential tests).
func (c *ColRel) Rel() Rel {
	out := Rel{Cols: c.Cols, Tuples: make([][]types.Value, c.rows)}
	for r := 0; r < c.rows; r++ {
		t := make([]types.Value, len(c.Vecs))
		for i := range c.Vecs {
			t[i] = c.Vecs[i].Value(r)
		}
		out.Tuples[r] = t
	}
	return out
}

// RowBytes estimates the average tuple width, mirroring Rel.RowBytes, for
// cost features and network-transfer accounting.
func (c *ColRel) RowBytes() int {
	if c.rows == 0 {
		return 0
	}
	sample := c.rows
	if sample > 32 {
		sample = 32
	}
	n := 0
	for r := 0; r < sample; r++ {
		for i := range c.Vecs {
			n += types.VarWidth(c.Vecs[i].Value(r))
		}
	}
	return n / sample
}

// Bytes estimates the total materialized size, used against the join spill
// budget.
func (c *ColRel) Bytes() int64 {
	return int64(c.rows) * int64(c.RowBytes())
}

// selView returns a Batch view over the relation's vectors selecting rows
// [0, n): the bridge that lets Aggregator.ObserveBatch fold a join output
// without re-boxing. The returned batch borrows c's arrays.
func (c *ColRel) selView(sel []int32) storage.Batch {
	return storage.Batch{Vecs: c.Vecs, Sel: sel}
}
