package exec

import (
	"testing"
	"testing/quick"

	"proteus/internal/cost"
	"proteus/internal/disksim"
	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

func iv(vs ...int64) []types.Value {
	out := make([]types.Value, len(vs))
	for i, v := range vs {
		out[i] = types.NewInt64(v)
	}
	return out
}

func rel(cols []string, tuples ...[]types.Value) Rel {
	return Rel{Cols: cols, Tuples: tuples}
}

func testPartition(t *testing.T, layout storage.Layout, n int64) *partition.Partition {
	t.Helper()
	f := partition.Factory{Dev: disksim.New(disksim.Config{})}
	// Partition covers columns 2..5 of a wider table.
	b := partition.Bounds{Table: 0, RowStart: 0, RowEnd: 10000, ColStart: 2, ColEnd: 5}
	kinds := []types.Kind{types.KindInt64, types.KindInt64, types.KindFloat64}
	p := partition.New(1, b, kinds, layout, f)
	rows := make([]schema.Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 5), types.NewFloat64(float64(i) / 4),
		}})
	}
	if err := p.Load(rows, 1); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScanGlobalColumnTranslation(t *testing.T) {
	p := testPartition(t, storage.DefaultColumnLayout(), 100)
	// Global col 3 = local col 1 (i%5); predicate on global col 2 (= i).
	pred := storage.Pred{{Col: 2, Op: storage.CmpLt, Val: types.NewInt64(10)}}
	r, obs, pushed := Scan(p, []schema.ColID{3}, pred, storage.Latest)
	if !pushed {
		t.Error("predicate should fully push down")
	}
	if r.NumRows() != 10 {
		t.Fatalf("rows = %d", r.NumRows())
	}
	if r.Tuples[7][0].Int() != 7%5 {
		t.Errorf("tuple = %v", r.Tuples[7])
	}
	if obs.Op != cost.OpScan || obs.Latency <= 0 {
		t.Errorf("obs = %+v", obs)
	}
}

func TestScanResidualPredicate(t *testing.T) {
	p := testPartition(t, storage.DefaultRowLayout(), 10)
	// Condition on global col 0, which this partition does not store.
	pred := storage.Pred{{Col: 0, Op: storage.CmpEq, Val: types.NewInt64(1)}}
	_, _, pushed := Scan(p, []schema.ColID{2}, pred, storage.Latest)
	if pushed {
		t.Error("predicate on uncovered column cannot push down")
	}
}

func TestPointReadAndWrites(t *testing.T) {
	p := testPartition(t, storage.DefaultRowLayout(), 10)
	r, ok, obs := PointRead(p, 5, []schema.ColID{2, 4}, storage.Latest)
	if !ok || r.Vals[0].Int() != 5 || r.Vals[1].Float() != 1.25 {
		t.Errorf("point read: %v %v", r, ok)
	}
	if obs.Op != cost.OpPointRead {
		t.Errorf("obs op = %v", obs.Op)
	}
	if _, err := Update(p, 5, []schema.ColID{3}, iv(99), 2); err != nil {
		t.Fatal(err)
	}
	r, _, _ = PointRead(p, 5, []schema.ColID{3}, storage.Latest)
	if r.Vals[0].Int() != 99 {
		t.Errorf("after update: %v", r.Vals)
	}
	if _, err := Insert(p, schema.Row{ID: 500, Vals: iv3(500, 0, 0)}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := Delete(p, 500, 4); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := PointRead(p, 500, []schema.ColID{2}, storage.Latest); ok {
		t.Error("deleted row readable")
	}
}

func iv3(a, b int64, f float64) []types.Value {
	return []types.Value{types.NewInt64(a), types.NewInt64(b), types.NewFloat64(f)}
}

func TestHashJoin(t *testing.T) {
	l := rel([]string{"a", "k"}, iv(1, 10), iv(2, 20), iv(3, 10))
	r := rel([]string{"k", "b"}, iv(10, 100), iv(30, 300))
	out, obs := HashJoin(l, r, []int{1}, []int{0})
	if out.NumRows() != 2 {
		t.Fatalf("join rows = %d", out.NumRows())
	}
	for _, tup := range out.Tuples {
		if tup[1].Int() != tup[2].Int() {
			t.Errorf("key mismatch: %v", tup)
		}
		if len(tup) != 4 {
			t.Errorf("tuple width: %v", tup)
		}
	}
	if obs.Variant != cost.JoinHash {
		t.Errorf("variant = %v", obs.Variant)
	}
}

func TestHashJoinBuildSideSwap(t *testing.T) {
	// l smaller than r: build on l. Column order must stay l-then-r.
	l := rel([]string{"k"}, iv(1))
	r := rel([]string{"k", "v"}, iv(1, 11), iv(1, 12), iv(2, 22))
	out, _ := HashJoin(l, r, []int{0}, []int{0})
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	for _, tup := range out.Tuples {
		if tup[0].Int() != 1 || tup[1].Int() != 1 {
			t.Errorf("column order broken: %v", tup)
		}
	}
}

func TestMergeJoinWithDuplicates(t *testing.T) {
	l := rel([]string{"k", "a"}, iv(1, 1), iv(2, 2), iv(2, 3), iv(4, 4))
	r := rel([]string{"k", "b"}, iv(2, 20), iv(2, 21), iv(4, 40), iv(5, 50))
	out, obs := MergeJoin(l, r, []int{0}, []int{0})
	// k=2: 2x2 = 4 pairs; k=4: 1 pair.
	if out.NumRows() != 5 {
		t.Fatalf("merge join rows = %d: %v", out.NumRows(), out.Tuples)
	}
	if obs.Variant != cost.JoinMerge {
		t.Errorf("variant = %v", obs.Variant)
	}
	// Agreement with hash join.
	hj, _ := HashJoin(l, r, []int{0}, []int{0})
	if hj.NumRows() != out.NumRows() {
		t.Errorf("hash %d != merge %d", hj.NumRows(), out.NumRows())
	}
}

func TestNestedLoopJoin(t *testing.T) {
	l := rel([]string{"a"}, iv(1), iv(5))
	r := rel([]string{"b"}, iv(3), iv(6))
	out, obs := NestedLoopJoin(l, r, func(lt, rt []types.Value) bool {
		return lt[0].Int() < rt[0].Int()
	})
	if out.NumRows() != 3 { // (1,3) (1,6) (5,6)
		t.Errorf("rows = %d", out.NumRows())
	}
	if obs.Variant != cost.JoinNested {
		t.Errorf("variant = %v", obs.Variant)
	}
}

func TestSemiJoinFilter(t *testing.T) {
	l := rel([]string{"k"}, iv(1), iv(2), iv(3), iv(2))
	r := rel([]string{"k"}, iv(2), iv(3))
	out, _ := SemiJoinFilter(l, []int{0}, r, []int{0})
	if out.NumRows() != 3 {
		t.Errorf("semi join rows = %d", out.NumRows())
	}
}

func TestHashAggregate(t *testing.T) {
	r := rel([]string{"g", "v"}, iv(1, 10), iv(2, 5), iv(1, 20), iv(2, 7))
	out, obs := HashAggregate(r, []int{0}, []AggSpec{
		{Func: AggSum, Col: 1}, {Func: AggCount}, {Func: AggMin, Col: 1},
		{Func: AggMax, Col: 1}, {Func: AggAvg, Col: 1},
	})
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	byG := map[int64][]types.Value{}
	for _, tup := range out.Tuples {
		byG[tup[0].Int()] = tup
	}
	g1 := byG[1]
	if g1[1].Int() != 30 || g1[2].Int() != 2 || g1[3].Int() != 10 || g1[4].Int() != 20 || g1[5].Float() != 15 {
		t.Errorf("group 1 = %v", g1)
	}
	if obs.Variant != cost.AggHash {
		t.Errorf("variant = %v", obs.Variant)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	out, _ := HashAggregate(Rel{}, nil, []AggSpec{{Func: AggCount}})
	if out.NumRows() != 1 || out.Tuples[0][0].Int() != 0 {
		t.Errorf("empty agg = %v", out.Tuples)
	}
	out, _ = SortedAggregate(Rel{}, nil, []AggSpec{{Func: AggSum, Col: 0}})
	if out.NumRows() != 1 {
		t.Errorf("empty sorted agg = %v", out.Tuples)
	}
}

func TestSortedAggregateMatchesHash(t *testing.T) {
	r := rel([]string{"g", "v"}, iv(1, 1), iv(1, 2), iv(2, 3), iv(3, 4), iv(3, 5))
	sa, obs := SortedAggregate(r, []int{0}, []AggSpec{{Func: AggSum, Col: 1}})
	ha, _ := HashAggregate(r, []int{0}, []AggSpec{{Func: AggSum, Col: 1}})
	if sa.NumRows() != ha.NumRows() {
		t.Fatalf("sorted %d != hash %d", sa.NumRows(), ha.NumRows())
	}
	if obs.Variant != cost.AggSort {
		t.Errorf("variant = %v", obs.Variant)
	}
}

func TestSortAndProjectAndFilter(t *testing.T) {
	r := rel([]string{"a", "b"}, iv(3, 30), iv(1, 10), iv(2, 20))
	s, obs := Sort(r, []int{0})
	if s.Tuples[0][0].Int() != 1 || s.Tuples[2][0].Int() != 3 {
		t.Errorf("sorted = %v", s.Tuples)
	}
	if obs.Op != cost.OpSort {
		t.Errorf("obs = %v", obs.Op)
	}
	p := Project(s, []int{1})
	if len(p.Cols) != 1 || p.Cols[0] != "b" || p.Tuples[0][0].Int() != 10 {
		t.Errorf("projected = %v %v", p.Cols, p.Tuples)
	}
	f := Filter(r, func(t []types.Value) bool { return t[0].Int() >= 2 })
	if f.NumRows() != 2 {
		t.Errorf("filtered = %d", f.NumRows())
	}
	c := Concat(r, f)
	if c.NumRows() != 5 {
		t.Errorf("concat = %d", c.NumRows())
	}
}

// Property: hash join and merge join agree on random key multisets.
func TestJoinAlgorithmsAgreeProperty(t *testing.T) {
	f := func(lk, rk []uint8) bool {
		l, r := Rel{Cols: []string{"k"}}, Rel{Cols: []string{"k"}}
		for _, k := range lk {
			l.Tuples = append(l.Tuples, iv(int64(k%8)))
		}
		for _, k := range rk {
			r.Tuples = append(r.Tuples, iv(int64(k%8)))
		}
		ls, _ := Sort(l, []int{0})
		rs, _ := Sort(r, []int{0})
		mj, _ := MergeJoin(ls, rs, []int{0}, []int{0})
		hj, _ := HashJoin(l, r, []int{0}, []int{0})
		return mj.NumRows() == hj.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScanZoneMapSkip(t *testing.T) {
	p := testPartition(t, storage.DefaultColumnLayout(), 1000)
	pred := storage.Pred{{Col: 2, Op: storage.CmpGt, Val: types.NewInt64(99999)}}
	r, _, _ := Scan(p, []schema.ColID{2}, pred, storage.Latest)
	if r.NumRows() != 0 {
		t.Errorf("zone-map skip failed: %d rows", r.NumRows())
	}
}

func TestScanWithRowIDs(t *testing.T) {
	p := testPartition(t, storage.DefaultRowLayout(), 20)
	r, ids, _ := ScanWithRowIDs(p, []schema.ColID{2}, nil, storage.Latest)
	if len(ids) != 20 || r.NumRows() != 20 {
		t.Fatalf("rows = %d ids = %d", r.NumRows(), len(ids))
	}
	for i, id := range ids {
		if r.Tuples[i][0].Int() != int64(id) {
			t.Errorf("id %d misaligned with tuple %v", id, r.Tuples[i])
		}
	}
}
