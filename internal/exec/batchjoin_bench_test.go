package exec

// A/B benchmarks for the batch join and group-by engine against the row
// operators they replace. `make bench` runs these with -benchmem; the two
// columns that matter are ns/op (typed keys + index-pair probe vs boxed
// tuples) and allocs/op (one gather per column vs one concat per row).

import (
	"math/rand"
	"testing"

	"proteus/internal/disksim"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// benchJoinInputs builds a dup-heavy pair of relations: nl left rows, nr
// right rows, int keys over a domain that yields roughly 4*nl matches.
func benchJoinInputs(nl, nr int) (Rel, Rel) {
	rng := rand.New(rand.NewSource(5))
	domain := nr / 4
	if domain < 1 {
		domain = 1
	}
	l := Rel{Cols: []string{"k", "la", "lb"}}
	for i := 0; i < nl; i++ {
		l.Tuples = append(l.Tuples, []types.Value{
			types.NewInt64(int64(rng.Intn(domain))),
			types.NewInt64(int64(i)),
			types.NewFloat64(float64(i) / 3),
		})
	}
	r := Rel{Cols: []string{"k", "ra"}}
	for i := 0; i < nr; i++ {
		r.Tuples = append(r.Tuples, []types.Value{
			types.NewInt64(int64(rng.Intn(domain))),
			types.NewInt64(int64(100000 + i)),
		})
	}
	return l, r
}

func BenchmarkJoinRow(b *testing.B) {
	l, r := benchJoinInputs(20000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := HashJoin(l, r, []int{0}, []int{0})
		_ = out
	}
}

func BenchmarkJoinBatch(b *testing.B) {
	l, r := benchJoinInputs(20000, 5000)
	lc, rc := ColRelFromRel(l), ColRelFromRel(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := BatchHashJoin(&lc, &rc, 0, 0, nil, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// BenchmarkJoinBatchProjected adds late materialization: the caller needs
// one payload column of five, so four gathers never happen.
func BenchmarkJoinBatchProjected(b *testing.B) {
	l, r := benchJoinInputs(20000, 5000)
	lc, rc := ColRelFromRel(l), ColRelFromRel(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := BatchHashJoin(&lc, &rc, 0, 0, nil, []int{2}, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// BenchmarkJoinBatchRuntimeFilter measures building a runtime filter from
// the build side and Bloom-probing the full probe side through FilterCols
// (the pushdown the cluster executor performs before the join proper).
func BenchmarkJoinBatchRuntimeFilter(b *testing.B) {
	l, r := benchJoinInputs(20000, 5000)
	lc, rc := ColRelFromRel(l), ColRelFromRel(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := BuildRuntimeFilter(&rc, 0)
		filtered := rf.FilterCols(&lc, 0)
		out, _, err := BatchHashJoin(&filtered, &rc, 0, 0, nil, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// BenchmarkJoinBatchSpill forces grace partitioning through a zero-latency
// disksim device: the cost of serialize/round-trip/deserialize plus the
// restoring pair sort, against the same in-memory join above.
func BenchmarkJoinBatchSpill(b *testing.B) {
	l, r := benchJoinInputs(20000, 5000)
	lc, rc := ColRelFromRel(l), ColRelFromRel(r)
	spill := &JoinSpill{Device: disksim.New(disksim.Config{}), Budget: 1 << 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := BatchHashJoin(&lc, &rc, 0, 0, spill, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// benchGroupInputs builds a 3-column relation: int group key (8 groups),
// int payload, float payload.
func benchGroupInputs(n int) Rel {
	rng := rand.New(rand.NewSource(9))
	r := Rel{Cols: []string{"g", "x", "y"}}
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, []types.Value{
			types.NewInt64(int64(rng.Intn(8))),
			types.NewInt64(int64(rng.Intn(1000))),
			types.NewFloat64(float64(rng.Intn(1000)) / 4),
		})
	}
	return r
}

var benchAggSpecs = []AggSpec{
	{Func: AggCount}, {Func: AggSum, Col: 1}, {Func: AggSum, Col: 2}, {Func: AggMin, Col: 2},
}

func BenchmarkGroupByRow(b *testing.B) {
	r := benchGroupInputs(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := HashAggregate(r, []int{0}, benchAggSpecs)
		_ = out
	}
}

func BenchmarkGroupByBatch(b *testing.B) {
	r := benchGroupInputs(50000)
	c := ColRelFromRel(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewAggregator([]int{0}, benchAggSpecs)
		agg.ObserveCols(&c)
		out := agg.Rel(c.Cols)
		_ = out
	}
}

// BenchmarkGroupByBatchDict groups on raw dictionary codes: the group key
// is a dict-encoded string vector, so entry resolution is one slice index
// per row after the first sight of each code.
func BenchmarkGroupByBatchDict(b *testing.B) {
	const n = 50000
	rng := rand.New(rand.NewSource(13))
	dict := []string{"ca", "il", "ny", "or", "tx", "ut", "va", "wa"}
	codes := make([]uint32, n)
	x := make([]int64, n)
	for i := range codes {
		codes[i] = uint32(rng.Intn(len(dict)))
		x[i] = int64(rng.Intn(1000))
	}
	batch := &Batch{Vecs: []Vec{
		storage.DictVec(codes, dict),
		storage.ViewVec(types.KindInt64, x, nil, nil, nil),
	}}
	batch.SetRowIDsView(make([]schema.RowID, n))
	specs := []AggSpec{{Func: AggCount}, {Func: AggSum, Col: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewAggregator([]int{0}, specs)
		agg.ObserveBatch(batch)
		out := agg.Rel([]string{"g", "x"})
		_ = out
	}
}
