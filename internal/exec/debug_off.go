//go:build !proteusdebug

package exec

// debugChecks gates expensive invariant assertions (e.g. MergeJoin's
// sorted-input check). Off in normal builds; the `proteusdebug` build tag
// turns it on, and regression tests flip the variable directly.
var debugChecks = false
