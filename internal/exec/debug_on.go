//go:build proteusdebug

package exec

// debugChecks gates expensive invariant assertions; the `proteusdebug`
// build tag compiles them in.
var debugChecks = true
