package exec

import (
	"testing"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// BenchmarkBatchKernels compares the row-at-a-time boxed kernels against
// the typed vector kernels on the two hot scan operations: predicate
// filtering and sum aggregation, over int and float columns. `make bench`
// runs this with -benchmem; the allocs/op column is the point — the boxed
// paths box every cell through types.Value, the vector paths touch raw
// machine slices.
func BenchmarkBatchKernels(b *testing.B) {
	const n = 4096
	ints := make([]int64, n)
	floats := make([]float64, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(i % 512)
		floats[i] = float64(i%512) / 2
	}
	intVec := storage.ViewVec(types.KindInt64, ints, nil, nil, nil)
	floatVec := storage.ViewVec(types.KindFloat64, nil, floats, nil, nil)
	intVecP, floatVecP := &intVec, &floatVec
	intCut := types.NewInt64(256)
	floatCut := types.NewFloat64(128)

	b.Run("filter-int/boxed", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			kept := 0
			for j := 0; j < n; j++ {
				if storage.CmpLt.Eval(types.NewInt64(ints[j]), intCut) {
					kept++
				}
			}
			_ = kept
		}
	})
	b.Run("filter-int/vector", func(b *testing.B) {
		b.SetBytes(n * 8)
		var sel []int32
		for i := 0; i < b.N; i++ {
			sel = storage.FilterVec(sel[:0], nil, n, intVecP, storage.CmpLt, intCut)
		}
	})
	b.Run("filter-float/boxed", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			kept := 0
			for j := 0; j < n; j++ {
				if storage.CmpGe.Eval(types.NewFloat64(floats[j]), floatCut) {
					kept++
				}
			}
			_ = kept
		}
	})
	b.Run("filter-float/vector", func(b *testing.B) {
		b.SetBytes(n * 8)
		var sel []int32
		for i := 0; i < b.N; i++ {
			sel = storage.FilterVec(sel[:0], nil, n, floatVecP, storage.CmpGe, floatCut)
		}
	})

	specs := []AggSpec{{Func: AggSum, Col: 0}, {Func: AggMin, Col: 0}, {Func: AggMax, Col: 0}}
	batch := &Batch{Vecs: []Vec{intVec}}
	batch.SetRowIDsView(make([]schema.RowID, n))
	fbatch := &Batch{Vecs: []Vec{floatVec}}
	fbatch.SetRowIDsView(make([]schema.RowID, n))

	b.Run("sum-int/boxed", func(b *testing.B) {
		b.SetBytes(n * 8)
		st := newAggState(len(specs))
		tuple := make([]types.Value, 1)
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				tuple[0] = types.NewInt64(ints[j])
				st.observe(tuple, specs)
			}
		}
	})
	b.Run("sum-int/vector", func(b *testing.B) {
		b.SetBytes(n * 8)
		st := newAggState(len(specs))
		for i := 0; i < b.N; i++ {
			st.observeBatch(batch, specs)
		}
	})
	b.Run("sum-float/boxed", func(b *testing.B) {
		b.SetBytes(n * 8)
		st := newAggState(len(specs))
		tuple := make([]types.Value, 1)
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				tuple[0] = types.NewFloat64(floats[j])
				st.observe(tuple, specs)
			}
		}
	})
	b.Run("sum-float/vector", func(b *testing.B) {
		b.SetBytes(n * 8)
		st := newAggState(len(specs))
		for i := 0; i < b.N; i++ {
			st.observeBatch(fbatch, specs)
		}
	})
}
