package exec

import (
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// RuntimeFilter is a Bloom + min-max filter computed from a hash join's
// build-side key column and pushed into the probe side's scan (§4.3): the
// min-max bounds become ordinary predicate conjuncts that the morsel
// scheduler's zone maps can prune whole morsels with and FilterVec applies
// within batches, while the Bloom filter drops non-matching probe rows
// batch-at-a-time before they are materialized or shipped. The filter
// hashes through types.Value.Hash, so NULL build keys are representable
// and NULL==NULL join semantics survive filtering.
type RuntimeFilter struct {
	bits     []uint64
	mask     uint64 // bit-index mask (bit count - 1); bits may be nil (filter disabled)
	n        int    // build rows folded in
	hasNull  bool   // build side contained a NULL key
	min, max types.Value
}

// maxBloomBuildRows caps the build cardinality beyond which the Bloom
// filter is not built (the bitset would be large and a filter that big
// rarely rejects much); min-max bounds are still tracked.
const maxBloomBuildRows = 4 << 20

// hashInt64 replicates types.Value.Hash for the int-family kinds (Int64,
// Time, Bool) without boxing; integral floats hash identically.
func hashInt64(x int64) uint64 {
	const prime64 = 1099511627776003
	h := uint64(14695981039346656037)
	h ^= 2
	h *= prime64
	u := uint64(x)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(u >> (8 * i)))
		h *= prime64
	}
	return h
}

// BuildRuntimeFilter folds the key column of a build-side relation into a
// new runtime filter.
func BuildRuntimeFilter(c *ColRel, key int) *RuntimeFilter {
	f := &RuntimeFilter{}
	n := c.NumRows()
	if n > 0 && n <= maxBloomBuildRows {
		bits := uint64(256)
		for bits < uint64(n)*10 {
			bits <<= 1
		}
		f.bits = make([]uint64, bits/64)
		f.mask = bits - 1
	}
	v := &c.Vecs[key]
	for r := 0; r < n; r++ {
		f.AddValue(v.Value(r))
	}
	return f
}

// AddValue folds one build-side key into the filter.
func (f *RuntimeFilter) AddValue(v types.Value) {
	f.n++
	if v.IsNull() {
		f.hasNull = true
	} else {
		if f.min.IsNull() || types.Compare(v, f.min) < 0 {
			f.min = v
		}
		if f.max.IsNull() || types.Compare(v, f.max) > 0 {
			f.max = v
		}
	}
	f.setHash(v.Hash())
}

func (f *RuntimeFilter) setHash(h uint64) {
	if f.bits == nil {
		return
	}
	d := h>>32 | 1
	for k := uint64(0); k < 2; k++ {
		i := (h + k*d) & f.mask
		f.bits[i>>6] |= 1 << (i & 63)
	}
}

func (f *RuntimeFilter) testHash(h uint64) bool {
	if f.bits == nil {
		return true
	}
	d := h>>32 | 1
	for k := uint64(0); k < 2; k++ {
		i := (h + k*d) & f.mask
		if f.bits[i>>6]&(1<<(i&63)) == 0 {
			return false
		}
	}
	return true
}

// Empty reports whether the build side had zero rows, in which case an
// inner join's probe side need not be scanned at all.
func (f *RuntimeFilter) Empty() bool { return f == nil || f.n == 0 }

// TestValue reports whether a probe key may have a build-side match.
func (f *RuntimeFilter) TestValue(v types.Value) bool {
	return f.testHash(v.Hash())
}

// BoundsPred returns min-max conjuncts on the probe key column, suitable
// for appending to a scan predicate (zone-map morsel pruning + FilterVec).
// Nil when the filter saw no rows or a NULL build key: predicate Eval
// drops NULL probe rows, which is only equivalent to the join when the
// build side holds no NULL keys.
func (f *RuntimeFilter) BoundsPred(col schema.ColID) storage.Pred {
	if f == nil || f.n == 0 || f.hasNull {
		return nil
	}
	return storage.Pred{
		{Col: col, Op: storage.CmpGe, Val: f.min},
		{Col: col, Op: storage.CmpLe, Val: f.max},
	}
}

// FilterBatch narrows a scan batch's selection to the rows whose key
// column passes the Bloom filter, writing the surviving selection into
// scratch (which must not alias b.Sel) and installing it as b.Sel. It
// returns the scratch slice for reuse. Encoded key vectors are tested on
// raw codes: FoR rows hash base+code without decoding and dictionary
// vectors memoize one verdict per distinct code.
func (f *RuntimeFilter) FilterBatch(b *storage.Batch, key int, scratch []int32) []int32 {
	n := b.Len()
	if n == 0 {
		return scratch
	}
	out := scratch[:0]
	v := &b.Vecs[key]
	statBloomTested.Add(int64(n))
	switch {
	case v.Enc == storage.EncFoR:
		b.Selected(func(r int) bool {
			if f.testHash(hashInt64(v.Base + int64(v.Codes[r]))) {
				out = append(out, int32(r))
			}
			return true
		})
	case v.Enc == storage.EncDict:
		verdict := make([]uint8, len(v.Dict)) // 0 untested, 1 pass, 2 fail
		b.Selected(func(r int) bool {
			c := v.Codes[r]
			if verdict[c] == 0 {
				if f.TestValue(types.NewString(v.Dict[c])) {
					verdict[c] = 1
				} else {
					verdict[c] = 2
				}
			}
			if verdict[c] == 1 {
				out = append(out, int32(r))
			}
			return true
		})
	case v.Enc == storage.EncNone && v.Null == nil && v.Kind != types.KindFloat64 && v.Kind != types.KindString && v.Kind != types.KindNull:
		b.Selected(func(r int) bool {
			if f.testHash(hashInt64(v.I64[r])) {
				out = append(out, int32(r))
			}
			return true
		})
	default:
		b.Selected(func(r int) bool {
			if f.TestValue(v.Value(r)) {
				out = append(out, int32(r))
			}
			return true
		})
	}
	statBloomPassed.Add(int64(len(out)))
	b.Sel = out
	return out
}

// FilterCols returns the rows of c whose key passes the filter — the
// materialized-input counterpart of FilterBatch, used when the probe side
// is itself a join output or a non-morsel scan.
func (f *RuntimeFilter) FilterCols(c *ColRel, key int) ColRel {
	n := c.NumRows()
	sel := make([]int32, 0, n)
	v := &c.Vecs[key]
	statBloomTested.Add(int64(n))
	for r := 0; r < n; r++ {
		if f.TestValue(v.Value(r)) {
			sel = append(sel, int32(r))
		}
	}
	statBloomPassed.Add(int64(len(sel)))
	if len(sel) == n {
		return *c
	}
	out := NewColRel(c.Cols)
	out.Gather(c, sel)
	return out
}
