package exec

import (
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Batch is the columnar execution batch flowing through the scan pipeline.
// The concrete type lives in internal/storage so stores can produce batches
// without importing the executor; exec re-exports it as the canonical name
// operator code uses.
type Batch = storage.Batch

// Vec is one typed column vector of a Batch.
type Vec = storage.Vec

// observeBatch folds every selected row of b into the state. Null-free
// Int64 and Float64 vectors take a typed fold that accumulates raw machine
// values and boxes once per batch; everything else (Time, Bool, String, or
// vectors carrying NULLs) falls back to the boxed per-row path so
// types.Add's kind semantics are preserved exactly.
func (s *aggState) observeBatch(b *Batch, specs []AggSpec) {
	n := b.Len()
	if n == 0 {
		return
	}
	for i, sp := range specs {
		s.counts[i] += int64(n)
		if sp.Func == AggCount {
			continue
		}
		v := &b.Vecs[sp.Col]
		switch {
		case v.Null == nil && v.Kind == types.KindInt64:
			s.foldInt64(i, v.I64, b.Sel)
		case v.Null == nil && v.Kind == types.KindFloat64:
			s.foldFloat64(i, v.F64, b.Sel)
		default:
			if b.Sel == nil {
				for r := 0; r < v.Len(); r++ {
					s.observeVal(i, v.Value(r))
				}
			} else {
				for _, r := range b.Sel {
					s.observeVal(i, v.Value(int(r)))
				}
			}
		}
	}
}

func (s *aggState) foldInt64(i int, xs []int64, sel []int32) {
	var sum, mn, mx int64
	if sel == nil {
		if len(xs) == 0 {
			return
		}
		mn, mx = xs[0], xs[0]
		for _, x := range xs {
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
	} else {
		if len(sel) == 0 {
			return
		}
		mn = xs[sel[0]]
		mx = mn
		for _, r := range sel {
			x := xs[r]
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
	}
	s.sums[i] = types.Add(s.sums[i], types.NewInt64(sum))
	if v := types.NewInt64(mn); s.mins[i].IsNull() || types.Compare(v, s.mins[i]) < 0 {
		s.mins[i] = v
	}
	if v := types.NewInt64(mx); s.maxs[i].IsNull() || types.Compare(v, s.maxs[i]) > 0 {
		s.maxs[i] = v
	}
}

func (s *aggState) foldFloat64(i int, xs []float64, sel []int32) {
	var sum, mn, mx float64
	if sel == nil {
		if len(xs) == 0 {
			return
		}
		mn, mx = xs[0], xs[0]
		for _, x := range xs {
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
	} else {
		if len(sel) == 0 {
			return
		}
		mn = xs[sel[0]]
		mx = mn
		for _, r := range sel {
			x := xs[r]
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
	}
	s.sums[i] = types.Add(s.sums[i], types.NewFloat64(sum))
	if v := types.NewFloat64(mn); s.mins[i].IsNull() || types.Compare(v, s.mins[i]) < 0 {
		s.mins[i] = v
	}
	if v := types.NewFloat64(mx); s.maxs[i].IsNull() || types.Compare(v, s.maxs[i]) > 0 {
		s.maxs[i] = v
	}
}

// ObserveBatch folds every selected row of a batch into the accumulator.
// The ungrouped case folds whole vectors per aggregate without boxing each
// row; grouped aggregation still walks rows to route them to their group,
// but reuses one key scratch tuple across the batch.
func (a *Aggregator) ObserveBatch(b *Batch) {
	if b.Len() == 0 {
		return
	}
	if len(a.groupBy) == 0 {
		a.entry(nil).state.observeBatch(b, a.specs)
		return
	}
	if len(a.keyScratch) < len(b.Vecs) {
		a.keyScratch = make([]types.Value, len(b.Vecs))
	}
	key := a.keyScratch[:len(b.Vecs)]
	b.Selected(func(row int) bool {
		for _, g := range a.groupBy {
			key[g] = b.Vecs[g].Value(row)
		}
		st := a.entry(key).state
		for i, sp := range a.specs {
			st.counts[i]++
			if sp.Func == AggCount {
				continue
			}
			st.observeVal(i, b.Vecs[sp.Col].Value(row))
		}
		return true
	})
}
