package exec

import (
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Batch is the columnar execution batch flowing through the scan pipeline.
// The concrete type lives in internal/storage so stores can produce batches
// without importing the executor; exec re-exports it as the canonical name
// operator code uses.
type Batch = storage.Batch

// Vec is one typed column vector of a Batch.
type Vec = storage.Vec

// observeBatch folds every selected row of b into the state. Null-free
// Int64 and Float64 vectors take a typed fold that accumulates raw machine
// values and boxes once per batch; encoded vectors fold directly over codes
// and run lengths without materializing values (FoR sums are exact because
// sum(base+code) == sum(codes) + n*base modulo 2^64, matching the boxed
// repeated add; dictionary min/max reduce to min/max code since the dict is
// sorted). Everything else (Time, Bool, String, or vectors carrying NULLs)
// falls back to the boxed per-row path so types.Add's kind semantics are
// preserved exactly.
func (s *aggState) observeBatch(b *Batch, specs []AggSpec) {
	n := b.Len()
	if n == 0 {
		return
	}
	for i, sp := range specs {
		s.counts[i] += int64(n)
		if sp.Func == AggCount {
			continue
		}
		v := &b.Vecs[sp.Col]
		switch {
		case v.Enc == storage.EncFoR && v.Kind == types.KindInt64:
			s.foldFoRInt64(i, v, b.Sel)
			storage.RecordEncodedFold()
		case v.Enc == storage.EncDict && (sp.Func == AggMin || sp.Func == AggMax):
			// finish() reads only mins/maxs for Min/Max specs, so the
			// string-sum accumulator can be skipped.
			s.foldDictCodes(i, v, b.Sel)
			storage.RecordEncodedFold()
		case v.Enc == storage.EncRuns && b.Sel == nil && v.Kind == types.KindInt64:
			s.foldRunsInt64(i, v)
			storage.RecordEncodedFold()
		case v.Enc == storage.EncRuns && b.Sel == nil && v.Kind == types.KindFloat64:
			s.foldRunsFloat64(i, v)
			storage.RecordEncodedFold()
		case v.Enc == storage.EncNone && v.Null == nil && v.Kind == types.KindInt64:
			s.foldInt64(i, v.I64, b.Sel)
		case v.Enc == storage.EncNone && v.Null == nil && v.Kind == types.KindFloat64:
			s.foldFloat64(i, v.F64, b.Sel)
		default:
			if b.Sel == nil {
				for r := 0; r < v.Len(); r++ {
					s.observeVal(i, v.Value(r))
				}
			} else {
				for _, r := range b.Sel {
					s.observeVal(i, v.Value(int(r)))
				}
			}
		}
	}
}

// foldFoRInt64 folds a frame-of-reference vector without decoding: the sum
// of stored values is the code sum plus n*base (wrap-identical to adding
// each decoded value), and min/max follow the min/max code because every
// stored value is base + code.
func (s *aggState) foldFoRInt64(i int, v *Vec, sel []int32) {
	var sumC int64
	var n int64
	var mnC, mxC uint32
	if sel == nil {
		if len(v.Codes) == 0 {
			return
		}
		mnC, mxC = v.Codes[0], v.Codes[0]
		for _, c := range v.Codes {
			sumC += int64(c)
			if c < mnC {
				mnC = c
			}
			if c > mxC {
				mxC = c
			}
		}
		n = int64(len(v.Codes))
	} else {
		if len(sel) == 0 {
			return
		}
		mnC = v.Codes[sel[0]]
		mxC = mnC
		for _, r := range sel {
			c := v.Codes[r]
			sumC += int64(c)
			if c < mnC {
				mnC = c
			}
			if c > mxC {
				mxC = c
			}
		}
		n = int64(len(sel))
	}
	s.sums[i] = types.Add(s.sums[i], types.NewInt64(sumC+n*v.Base))
	if mv := types.NewInt64(v.Base + int64(mnC)); s.mins[i].IsNull() || types.Compare(mv, s.mins[i]) < 0 {
		s.mins[i] = mv
	}
	if mv := types.NewInt64(v.Base + int64(mxC)); s.maxs[i].IsNull() || types.Compare(mv, s.maxs[i]) > 0 {
		s.maxs[i] = mv
	}
}

// foldDictCodes updates the min/max accumulators of a dictionary vector
// from its min/max code — the dictionary is sorted, so code order is value
// order. Only valid for Min/Max specs (the sum accumulator is left alone).
func (s *aggState) foldDictCodes(i int, v *Vec, sel []int32) {
	var mnC, mxC uint32
	if sel == nil {
		if len(v.Codes) == 0 {
			return
		}
		mnC, mxC = v.Codes[0], v.Codes[0]
		for _, c := range v.Codes {
			if c < mnC {
				mnC = c
			}
			if c > mxC {
				mxC = c
			}
		}
	} else {
		if len(sel) == 0 {
			return
		}
		mnC = v.Codes[sel[0]]
		mxC = mnC
		for _, r := range sel {
			c := v.Codes[r]
			if c < mnC {
				mnC = c
			}
			if c > mxC {
				mxC = c
			}
		}
	}
	if mv := types.NewString(v.Dict[mnC]); s.mins[i].IsNull() || types.Compare(mv, s.mins[i]) < 0 {
		s.mins[i] = mv
	}
	if mv := types.NewString(v.Dict[mxC]); s.maxs[i].IsNull() || types.Compare(mv, s.maxs[i]) > 0 {
		s.maxs[i] = mv
	}
}

// foldRunsInt64 folds a run-length vector one run at a time. val*runLen is
// wrap-identical to adding val runLen times, so the sum matches the boxed
// path exactly.
func (s *aggState) foldRunsInt64(i int, v *Vec) {
	if len(v.RunEnds) == 0 {
		return
	}
	var sum int64
	mn, mx := v.I64[0], v.I64[0]
	lo := uint32(0)
	for r, end := range v.RunEnds {
		x := v.I64[r]
		sum += x * int64(end-lo)
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
		lo = end
	}
	s.sums[i] = types.Add(s.sums[i], types.NewInt64(sum))
	if mv := types.NewInt64(mn); s.mins[i].IsNull() || types.Compare(mv, s.mins[i]) < 0 {
		s.mins[i] = mv
	}
	if mv := types.NewInt64(mx); s.maxs[i].IsNull() || types.Compare(mv, s.maxs[i]) > 0 {
		s.maxs[i] = mv
	}
}

// foldRunsFloat64 folds a run-length float vector. Each run accumulates by
// repeated addition — float multiplication by the run length would round
// differently from the decoded per-row path.
func (s *aggState) foldRunsFloat64(i int, v *Vec) {
	if len(v.RunEnds) == 0 {
		return
	}
	var sum float64
	mn, mx := v.F64[0], v.F64[0]
	lo := uint32(0)
	for r, end := range v.RunEnds {
		x := v.F64[r]
		for k := lo; k < end; k++ {
			sum += x
		}
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
		lo = end
	}
	s.sums[i] = types.Add(s.sums[i], types.NewFloat64(sum))
	if mv := types.NewFloat64(mn); s.mins[i].IsNull() || types.Compare(mv, s.mins[i]) < 0 {
		s.mins[i] = mv
	}
	if mv := types.NewFloat64(mx); s.maxs[i].IsNull() || types.Compare(mv, s.maxs[i]) > 0 {
		s.maxs[i] = mv
	}
}

func (s *aggState) foldInt64(i int, xs []int64, sel []int32) {
	var sum, mn, mx int64
	if sel == nil {
		if len(xs) == 0 {
			return
		}
		mn, mx = xs[0], xs[0]
		for _, x := range xs {
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
	} else {
		if len(sel) == 0 {
			return
		}
		mn = xs[sel[0]]
		mx = mn
		for _, r := range sel {
			x := xs[r]
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
	}
	s.sums[i] = types.Add(s.sums[i], types.NewInt64(sum))
	if v := types.NewInt64(mn); s.mins[i].IsNull() || types.Compare(v, s.mins[i]) < 0 {
		s.mins[i] = v
	}
	if v := types.NewInt64(mx); s.maxs[i].IsNull() || types.Compare(v, s.maxs[i]) > 0 {
		s.maxs[i] = v
	}
}

func (s *aggState) foldFloat64(i int, xs []float64, sel []int32) {
	var sum, mn, mx float64
	if sel == nil {
		if len(xs) == 0 {
			return
		}
		mn, mx = xs[0], xs[0]
		for _, x := range xs {
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
	} else {
		if len(sel) == 0 {
			return
		}
		mn = xs[sel[0]]
		mx = mn
		for _, r := range sel {
			x := xs[r]
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
	}
	s.sums[i] = types.Add(s.sums[i], types.NewFloat64(sum))
	if v := types.NewFloat64(mn); s.mins[i].IsNull() || types.Compare(v, s.mins[i]) < 0 {
		s.mins[i] = v
	}
	if v := types.NewFloat64(mx); s.maxs[i].IsNull() || types.Compare(v, s.maxs[i]) > 0 {
		s.maxs[i] = v
	}
}

// ObserveBatch folds every selected row of a batch into the accumulator.
// The ungrouped case folds whole vectors per aggregate without boxing each
// row; grouped aggregation still walks rows to route them to their group,
// but reuses one key scratch tuple across the batch.
func (a *Aggregator) ObserveBatch(b *Batch) {
	if b.Len() == 0 {
		return
	}
	if len(a.groupBy) == 0 {
		a.entry(nil).state.observeBatch(b, a.specs)
		return
	}
	statGroupByBatches.Add(1)
	if len(a.groupBy) == 1 && a.observeSingleKey(b) {
		return
	}
	statGroupByBoxRows.Add(int64(b.Len()))
	if len(a.keyScratch) < len(b.Vecs) {
		a.keyScratch = make([]types.Value, len(b.Vecs))
	}
	key := a.keyScratch[:len(b.Vecs)]
	b.Selected(func(row int) bool {
		for _, g := range a.groupBy {
			key[g] = b.Vecs[g].Value(row)
		}
		st := a.entry(key).state
		for i, sp := range a.specs {
			st.counts[i]++
			if sp.Func == AggCount {
				continue
			}
			st.observeVal(i, b.Vecs[sp.Col].Value(row))
		}
		return true
	})
}
