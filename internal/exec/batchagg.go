package exec

import (
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Single-key grouped aggregation fast paths (the tentpole's group-by half):
// where PR 6 taught the ungrouped folds to operate on raw dictionary and
// frame-of-reference codes, these extend the same idea to grouping. A batch
// whose single group-by column is a null-free typed or encoded vector
// resolves each row's group entry without boxing a key tuple — dictionary
// vectors memoize one entry per distinct code, FoR and plain int-family
// vectors key a typed int64 map — and the aggregate inputs then fold
// through typed adders that replicate types.Add's kind semantics exactly.
// Anything else falls back to the boxed per-row path in ObserveBatch.

// entryInt64 resolves the group entry for a typed int-family key, boxing
// only on first sight of a key.
func (a *Aggregator) entryInt64(x int64, kind types.Kind, g int) *groupEntry {
	if ge, ok := a.intGroups[x]; ok {
		return ge
	}
	if a.intGroups == nil {
		a.intGroups = make(map[int64]*groupEntry)
	}
	if len(a.keyScratch) <= g {
		a.keyScratch = make([]types.Value, g+1)
	}
	a.keyScratch[g] = types.Value{K: kind, I: x}
	ge := a.entry(a.keyScratch)
	a.intGroups[x] = ge
	return ge
}

// entryString resolves the group entry for a string key.
func (a *Aggregator) entryString(s string, g int) *groupEntry {
	if ge, ok := a.strGroups[s]; ok {
		return ge
	}
	if a.strGroups == nil {
		a.strGroups = make(map[string]*groupEntry)
	}
	if len(a.keyScratch) <= g {
		a.keyScratch = make([]types.Value, g+1)
	}
	a.keyScratch[g] = types.NewString(s)
	ge := a.entry(a.keyScratch)
	a.strGroups[s] = ge
	return ge
}

// observeSingleKey handles one batch when the single group-by column
// supports a typed key path, reporting whether it did.
func (a *Aggregator) observeSingleKey(b *Batch) bool {
	g := a.groupBy[0]
	v := &b.Vecs[g]
	ents := a.entScratch[:0]
	rows := a.rowScratch[:0]
	switch {
	case v.Enc == storage.EncFoR:
		b.Selected(func(r int) bool {
			ents = append(ents, a.entryInt64(v.Base+int64(v.Codes[r]), v.Kind, g))
			rows = append(rows, int32(r))
			return true
		})
		statGroupByCodeRows.Add(int64(len(rows)))
		storage.RecordEncodedFold()
	case v.Enc == storage.EncDict:
		// Group on raw dictionary codes: one entry lookup per distinct
		// code per batch, every further row is a slice index.
		de := a.dictEnts
		if cap(de) < len(v.Dict) {
			de = make([]*groupEntry, len(v.Dict))
		} else {
			de = de[:len(v.Dict)]
			for i := range de {
				de[i] = nil
			}
		}
		a.dictEnts = de
		b.Selected(func(r int) bool {
			c := v.Codes[r]
			e := de[c]
			if e == nil {
				e = a.entryString(v.Dict[c], g)
				de[c] = e
			}
			ents = append(ents, e)
			rows = append(rows, int32(r))
			return true
		})
		statGroupByCodeRows.Add(int64(len(rows)))
		storage.RecordEncodedFold()
	case v.Enc == storage.EncNone && v.Null == nil &&
		(v.Kind == types.KindInt64 || v.Kind == types.KindTime || v.Kind == types.KindBool):
		b.Selected(func(r int) bool {
			ents = append(ents, a.entryInt64(v.I64[r], v.Kind, g))
			rows = append(rows, int32(r))
			return true
		})
		statGroupByIntRows.Add(int64(len(rows)))
	case v.Enc == storage.EncNone && v.Null == nil && v.Kind == types.KindString:
		b.Selected(func(r int) bool {
			ents = append(ents, a.entryString(v.Str[r], g))
			rows = append(rows, int32(r))
			return true
		})
		statGroupByIntRows.Add(int64(len(rows)))
	default:
		return false
	}
	a.entScratch = ents
	a.rowScratch = rows
	a.foldSpecs(b, rows, ents)
	return true
}

// foldSpecs folds each aggregate input column for the resolved entries,
// using typed adders for null-free Int64/Float64 vectors and raw FoR codes.
func (a *Aggregator) foldSpecs(b *Batch, rows []int32, ents []*groupEntry) {
	for i, sp := range a.specs {
		if sp.Func == AggCount {
			for _, e := range ents {
				e.state.counts[i]++
			}
			continue
		}
		av := &b.Vecs[sp.Col]
		switch {
		case av.Enc == storage.EncNone && av.Null == nil && av.Kind == types.KindInt64:
			for j, e := range ents {
				e.state.counts[i]++
				e.state.addInt64(i, av.I64[rows[j]])
			}
		case av.Enc == storage.EncNone && av.Null == nil && av.Kind == types.KindFloat64:
			for j, e := range ents {
				e.state.counts[i]++
				e.state.addFloat64(i, av.F64[rows[j]])
			}
		case av.Enc == storage.EncFoR && av.Kind == types.KindInt64:
			for j, e := range ents {
				e.state.counts[i]++
				e.state.addInt64(i, av.Base+int64(av.Codes[rows[j]]))
			}
			storage.RecordEncodedFold()
		default:
			for j, e := range ents {
				e.state.counts[i]++
				e.state.observeVal(i, av.Value(int(rows[j])))
			}
		}
	}
}

// addInt64 folds one int64 aggregate input. Once the accumulators hold
// Int64 kinds the updates are raw machine adds/compares; any other kind
// (first value, float contamination, Time inputs) routes through the boxed
// observeVal so types.Add semantics are preserved bit for bit.
func (s *aggState) addInt64(i int, x int64) {
	if s.sums[i].K == types.KindInt64 && s.mins[i].K == types.KindInt64 && s.maxs[i].K == types.KindInt64 {
		s.sums[i].I += x
		if x < s.mins[i].I {
			s.mins[i].I = x
		}
		if x > s.maxs[i].I {
			s.maxs[i].I = x
		}
		return
	}
	s.observeVal(i, types.NewInt64(x))
}

// addFloat64 folds one float64 aggregate input, mirroring addInt64.
func (s *aggState) addFloat64(i int, x float64) {
	if s.sums[i].K == types.KindFloat64 && s.mins[i].K == types.KindFloat64 && s.maxs[i].K == types.KindFloat64 {
		s.sums[i].F += x
		if x < s.mins[i].F {
			s.mins[i].F = x
		}
		if x > s.maxs[i].F {
			s.maxs[i].F = x
		}
		return
	}
	s.observeVal(i, types.NewFloat64(x))
}

// ObserveCols folds every row of a columnar relation — the join→aggregate
// fusion path: a batch join's output feeds grouped aggregation without a
// row detour.
func (a *Aggregator) ObserveCols(c *ColRel) {
	n := c.NumRows()
	if n == 0 {
		return
	}
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	b := c.selView(sel)
	a.ObserveBatch(&b)
}
