package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"proteus/internal/cost"
	"proteus/internal/disksim"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Batch-native hash join (§4.3). The row HashJoin boxes every tuple and
// allocates one concatenated tuple per output row; this engine instead
// keeps both inputs columnar (ColRel), canonicalizes the single join key
// into a typed int64 array when the column is null-free int-family (or
// integral float), builds a chained-index hash table with zero per-bucket
// allocations, probes to a (left,right) row-index pair list, and
// late-materializes every payload column with one typed gather per column.
// Output order matches the row variants exactly: ascending left index,
// then ascending right index, so differential tests compare row for row.
//
// Oversized build sides degrade gracefully: when the build relation
// exceeds the spill budget both key columns hash-partition (grace hash
// join) through the disksim spill device — keys and original row indexes
// are serialized out and joined partition-pair at a time, recursively
// repartitioning skewed partitions — and the matched index pairs are
// sorted back into left-major order. Payload columns are never spilled:
// the scan pipeline has already materialized them, so spilling bounds the
// join's hash-table working set (keys + table), which is what grows with
// the build side; materialization still gathers from the in-memory
// payload vectors.

// JoinSpill configures build-side spilling: when the estimated build
// relation exceeds Budget bytes, key partitions round-trip through Device.
type JoinSpill struct {
	Device *disksim.Device
	Budget int64
}

const (
	graceFanout   = 8
	maxGraceDepth = 8
)

// keyCol is a join key column in canonical form: ints is the typed path
// (null-free int-family values, also used for integral floats — equality
// and hashing match types.Equal / types.Value.Hash exactly within that
// domain); vals is the boxed path for everything else, including NULLs.
type keyCol struct {
	ints []int64
	vals []types.Value
}

func canonKeyCol(v *storage.Vec, n int) keyCol {
	if n == 0 {
		return keyCol{}
	}
	if v.Null == nil {
		switch {
		case v.Enc == storage.EncNone && (v.Kind == types.KindInt64 || v.Kind == types.KindTime || v.Kind == types.KindBool):
			return keyCol{ints: v.I64[:n]}
		case v.Enc == storage.EncFoR:
			ints := make([]int64, n)
			for i := range ints {
				ints[i] = v.Base + int64(v.Codes[i])
			}
			return keyCol{ints: ints}
		case v.Enc == storage.EncNone && v.Kind == types.KindFloat64:
			// Integral floats canonicalize to int64 under the same criterion
			// types.Value.Hash uses, so typed hashing/equality stay exact.
			ints := make([]int64, n)
			for i, f := range v.F64[:n] {
				if f != math.Trunc(f) || f < math.MinInt64 || f > math.MaxInt64 {
					ints = nil
					break
				}
				ints[i] = int64(f)
			}
			if ints != nil {
				return keyCol{ints: ints}
			}
		}
	}
	vals := make([]types.Value, n)
	for i := range vals {
		vals[i] = v.Value(i)
	}
	return keyCol{vals: vals}
}

func (k keyCol) n() int {
	if k.ints != nil {
		return len(k.ints)
	}
	return len(k.vals)
}

func (k keyCol) hash(i int) uint64 {
	if k.ints != nil {
		return hashInt64(k.ints[i])
	}
	return k.vals[i].Hash()
}

func (k keyCol) val(i int) types.Value {
	if k.ints != nil {
		return types.NewInt64(k.ints[i])
	}
	return k.vals[i]
}

func (k keyCol) eq(i int, o keyCol, j int) bool {
	if k.ints != nil && o.ints != nil {
		return k.ints[i] == o.ints[j]
	}
	return types.Equal(k.val(i), o.val(j))
}

// keySet is one side of a (possibly spilled) join partition: canonical
// keys plus the original row indexes they came from. idx == nil means
// identity (row i is original row i).
type keySet struct {
	kc  keyCol
	idx []int32
}

func (s keySet) n() int { return s.kc.n() }

func (s keySet) orig(i int) int32 {
	if s.idx == nil {
		return int32(i)
	}
	return s.idx[i]
}

// pairBuf accumulates matched (left,right) original row index pairs.
type pairBuf struct {
	li, ri []int32
}

func (p *pairBuf) add(li, ri int32) {
	p.li = append(p.li, li)
	p.ri = append(p.ri, ri)
}

// joinPairs hash-joins two keySets in memory, appending matched original
// index pairs. buildIsLeft says which side of the output the build keys
// belong to. Within one call pairs come out left-major (the probe walks in
// order and chains are built in ascending build order).
func joinPairs(build, probe keySet, buildIsLeft bool, pairs *pairBuf) {
	nb := build.n()
	if nb == 0 || probe.n() == 0 {
		return
	}
	nbk := uint64(2)
	for nbk < uint64(nb)*2 {
		nbk <<= 1
	}
	mask := nbk - 1
	head := make([]int32, nbk)
	for i := range head {
		head[i] = -1
	}
	next := make([]int32, nb)
	hashes := make([]uint64, nb)
	for i := 0; i < nb; i++ {
		hashes[i] = build.kc.hash(i)
	}
	// Reverse insertion makes each chain ascend in build index, preserving
	// the row HashJoin's emission order.
	for i := nb - 1; i >= 0; i-- {
		slot := hashes[i] & mask
		next[i] = head[slot]
		head[slot] = int32(i)
	}
	np := probe.n()
	if buildIsLeft {
		// Probing emits probe-major order; group matches per build row so
		// output stays left-major (ascending build, then probe) like the
		// swapped row HashJoin.
		matches := make([][]int32, nb)
		for pi := 0; pi < np; pi++ {
			h := probe.kc.hash(pi)
			for bi := head[h&mask]; bi >= 0; bi = next[bi] {
				if hashes[bi] == h && build.kc.eq(int(bi), probe.kc, pi) {
					matches[bi] = append(matches[bi], int32(pi))
				}
			}
		}
		for bi, ps := range matches {
			for _, pi := range ps {
				pairs.add(build.orig(bi), probe.orig(int(pi)))
			}
		}
		return
	}
	for pi := 0; pi < np; pi++ {
		h := probe.kc.hash(pi)
		for bi := head[h&mask]; bi >= 0; bi = next[bi] {
			if hashes[bi] == h && build.kc.eq(int(bi), probe.kc, pi) {
				pairs.add(probe.orig(pi), build.orig(int(bi)))
			}
		}
	}
}

// keySetBytes estimates the serialized/working size of a keySet.
func keySetBytes(s keySet) int64 {
	n := int64(s.n())
	if s.kc.ints != nil {
		return n * 12
	}
	var b int64
	for _, v := range s.kc.vals {
		b += 12 + int64(len(v.S))
	}
	return b
}

// gracePartition derives a partition index from a key hash, using a
// different bit range per recursion depth so repartitioning actually
// splits (the table slot bits are the low bits, untouched here).
func gracePartition(h uint64, depth int) int {
	h *= 0x9E3779B97F4A7C15
	return int((h >> (61 - 3*uint(depth))) & (graceFanout - 1))
}

// serializeKeySet encodes a keySet as one spill block: row count, a typed
// flag, then per row the original index and the key payload.
func serializeKeySet(s keySet) []byte {
	n := s.n()
	buf := make([]byte, 0, 5+n*12)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	if s.kc.ints != nil {
		buf = append(buf, 1)
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(s.orig(i)))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(s.kc.ints[i]))
		}
		return buf
	}
	buf = append(buf, 0)
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.orig(i)))
		v := s.kc.vals[i]
		buf = append(buf, byte(v.K))
		switch v.K {
		case types.KindNull:
		case types.KindString:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.S)))
			buf = append(buf, v.S...)
		case types.KindFloat64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		default:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
		}
	}
	return buf
}

func deserializeKeySet(buf []byte) (keySet, error) {
	if len(buf) < 5 {
		return keySet{}, fmt.Errorf("spill block too short: %d bytes", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	typed := buf[4] == 1
	off := 5
	s := keySet{idx: make([]int32, 0, n)}
	if typed {
		s.kc.ints = make([]int64, 0, n)
		for i := 0; i < n; i++ {
			if off+12 > len(buf) {
				return keySet{}, fmt.Errorf("truncated spill block")
			}
			s.idx = append(s.idx, int32(binary.LittleEndian.Uint32(buf[off:])))
			s.kc.ints = append(s.kc.ints, int64(binary.LittleEndian.Uint64(buf[off+4:])))
			off += 12
		}
		return s, nil
	}
	s.kc.vals = make([]types.Value, 0, n)
	for i := 0; i < n; i++ {
		if off+5 > len(buf) {
			return keySet{}, fmt.Errorf("truncated spill block")
		}
		s.idx = append(s.idx, int32(binary.LittleEndian.Uint32(buf[off:])))
		k := types.Kind(buf[off+4])
		off += 5
		var v types.Value
		switch k {
		case types.KindNull:
			v = types.Null()
		case types.KindString:
			if off+4 > len(buf) {
				return keySet{}, fmt.Errorf("truncated spill block")
			}
			ln := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if off+ln > len(buf) {
				return keySet{}, fmt.Errorf("truncated spill block")
			}
			v = types.NewString(string(buf[off : off+ln]))
			off += ln
		default:
			if off+8 > len(buf) {
				return keySet{}, fmt.Errorf("truncated spill block")
			}
			u := binary.LittleEndian.Uint64(buf[off:])
			off += 8
			if k == types.KindFloat64 {
				v = types.Value{K: k, F: math.Float64frombits(u)}
			} else {
				v = types.Value{K: k, I: int64(u)}
			}
		}
		s.kc.vals = append(s.kc.vals, v)
	}
	return s, nil
}

// graceJoin hash-partitions both keySets through the spill device and
// joins partition pairs, recursing on build partitions that still exceed
// the budget. Pair order across partitions is arbitrary; BatchHashJoin
// sorts the full pair list afterwards.
func graceJoin(sp *JoinSpill, build, probe keySet, buildIsLeft bool, pairs *pairBuf, depth int) error {
	var bparts, pparts [graceFanout]keySet
	split := func(s keySet, parts *[graceFanout]keySet) {
		n := s.n()
		for i := 0; i < n; i++ {
			p := gracePartition(s.kc.hash(i), depth)
			dst := &parts[p]
			dst.idx = append(dst.idx, s.orig(i))
			if s.kc.ints != nil {
				dst.kc.ints = append(dst.kc.ints, s.kc.ints[i])
			} else {
				dst.kc.vals = append(dst.kc.vals, s.kc.vals[i])
			}
		}
	}
	split(build, &bparts)
	split(probe, &pparts)
	parentBuild := build.n()
	for p := 0; p < graceFanout; p++ {
		if bparts[p].n() == 0 || pparts[p].n() == 0 {
			continue
		}
		// Round-trip both partitions through the spill device so the
		// in-memory working set at any moment is one partition pair.
		bblob := serializeKeySet(bparts[p])
		pblob := serializeKeySet(pparts[p])
		bid, err := sp.Device.Write(bblob)
		if err != nil {
			return fmt.Errorf("join spill write: %w", err)
		}
		pid, err := sp.Device.Write(pblob)
		if err != nil {
			sp.Device.Free(bid)
			return fmt.Errorf("join spill write: %w", err)
		}
		statSpillPartitions.Add(2)
		statSpillBytes.Add(int64(len(bblob) + len(pblob)))
		bparts[p], pparts[p] = keySet{}, keySet{}

		bback, err := sp.Device.Read(bid)
		if err == nil {
			var pback []byte
			pback, err = sp.Device.Read(pid)
			if err == nil {
				var bs, ps keySet
				if bs, err = deserializeKeySet(bback); err == nil {
					if ps, err = deserializeKeySet(pback); err == nil {
						if depth+1 < maxGraceDepth && keySetBytes(bs) > sp.Budget && bs.n() < parentBuild {
							statSpillRecursions.Add(1)
							err = graceJoin(sp, bs, ps, buildIsLeft, pairs, depth+1)
						} else {
							joinPairs(bs, ps, buildIsLeft, pairs)
						}
					}
				}
			}
		}
		sp.Device.Free(bid)
		sp.Device.Free(pid)
		if err != nil {
			return err
		}
	}
	return nil
}

// BatchHashJoin computes the inner single-key equi-join of two columnar
// relations, returning the joined relation (left columns then right
// columns, left-major row order matching HashJoin) and a cost observation
// carrying the batch-join feature vector. spill may be nil to disable
// build-side spilling. projL/projR select which columns of each input to
// materialize (nil means all): late materialization's payoff — a parent
// aggregation that reads two of six join columns gathers only those two.
func BatchHashJoin(l, r *ColRel, lKey, rKey int, spill *JoinSpill, projL, projR []int) (ColRel, cost.Observation, error) {
	start := time.Now()
	buildIsLeft := l.NumRows() < r.NumRows()
	build, probe := r, l
	bKey, pKey := rKey, lKey
	if buildIsLeft {
		build, probe = l, r
		bKey, pKey = lKey, rKey
	}
	bset := keySet{kc: canonKeyCol(&build.Vecs[bKey], build.NumRows())}
	pset := keySet{kc: canonKeyCol(&probe.Vecs[pKey], probe.NumRows())}

	var pairs pairBuf
	var spilled bool
	var spillBytesBefore int64
	if spill != nil && spill.Device != nil && spill.Budget > 0 && build.Bytes() > spill.Budget && build.NumRows() > 1 {
		spilled = true
		spillBytesBefore = statSpillBytes.Load()
		if err := graceJoin(spill, bset, pset, buildIsLeft, &pairs, 0); err != nil {
			return ColRel{}, cost.Observation{}, err
		}
		// Partition order interleaves left indexes; restore the row
		// HashJoin's left-major contract.
		sort.Sort(pairSorter{&pairs})
	} else {
		joinPairs(bset, pset, buildIsLeft, &pairs)
	}
	buildDone := time.Now()

	if projL == nil {
		projL = identityProj(len(l.Vecs))
	}
	if projR == nil {
		projR = identityProj(len(r.Vecs))
	}
	cols := make([]string, 0, len(projL)+len(projR))
	for _, c := range projL {
		cols = append(cols, l.Cols[c])
	}
	for _, c := range projR {
		cols = append(cols, r.Cols[c])
	}
	out := NewColRel(cols)
	for i, c := range projL {
		out.Vecs[i].AppendVec(&l.Vecs[c], pairs.li)
	}
	for i, c := range projR {
		out.Vecs[len(projL)+i].AppendVec(&r.Vecs[c], pairs.ri)
	}
	out.rows = len(pairs.li)

	d := time.Since(start)
	statJoins.Add(1)
	statJoinBuildRows.Add(int64(build.NumRows()))
	statJoinProbeRows.Add(int64(probe.NumRows()))
	statJoinOutRows.Add(int64(out.rows))
	statJoinBuildNanos.Add(buildDone.Sub(start).Nanoseconds())
	statJoinProbeNanos.Add(time.Since(buildDone).Nanoseconds())

	sel := 1.0
	if denom := float64(l.NumRows()) * float64(r.NumRows()); denom > 0 {
		sel = float64(out.rows) / denom
	}
	var spillBytes int64
	if spilled {
		spillBytes = statSpillBytes.Load() - spillBytesBefore
	}
	obs := cost.Observation{
		Op:      cost.OpJoin,
		Variant: cost.JoinHashBatch,
		Features: cost.JoinFeaturesBatch(build.NumRows(), probe.NumRows(), out.rows,
			l.RowBytes()+r.RowBytes(), sel, spillBytes),
		Latency: d,
	}
	return out, obs, nil
}

func identityProj(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// pairSorter orders matched pairs by (left, right) original index.
type pairSorter struct{ p *pairBuf }

func (s pairSorter) Len() int { return len(s.p.li) }
func (s pairSorter) Less(i, j int) bool {
	if s.p.li[i] != s.p.li[j] {
		return s.p.li[i] < s.p.li[j]
	}
	return s.p.ri[i] < s.p.ri[j]
}
func (s pairSorter) Swap(i, j int) {
	s.p.li[i], s.p.li[j] = s.p.li[j], s.p.li[i]
	s.p.ri[i], s.p.ri[j] = s.p.ri[j], s.p.ri[i]
}
