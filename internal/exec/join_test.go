package exec

// Regression tests for the join-layer bugfixes: HashJoin's left-major row
// order must hold regardless of which side builds the hash table, all three
// variants must agree on NULL-key semantics (NULL == NULL matches, like
// CmpOp.Eval filters), and joinObs selectivity must not overflow.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"proteus/internal/storage"
	"proteus/internal/types"
)

// TestHashJoinLeftMajorUnderSwap pins the exact output order when the
// build-side swap triggers (l smaller than r): rows must still come in
// ascending left index, then ascending right index.
func TestHashJoinLeftMajorUnderSwap(t *testing.T) {
	l := rel([]string{"lk", "la"}, iv(1, 100), iv(2, 200), iv(1, 300))
	r := rel([]string{"rk", "rb"},
		iv(2, 20), iv(1, 11), iv(1, 12), iv(3, 30), iv(2, 21))
	if l.NumRows() >= r.NumRows() {
		t.Fatal("test needs l smaller than r to trigger the build swap")
	}
	out, _ := HashJoin(l, r, []int{0}, []int{0})
	// Left-major: l0 (k=1) matches r1, r2; l1 (k=2) matches r0, r4;
	// l2 (k=1) matches r1, r2.
	want := [][2]int64{{100, 11}, {100, 12}, {200, 20}, {200, 21}, {300, 11}, {300, 12}}
	if out.NumRows() != len(want) {
		t.Fatalf("rows = %d, want %d", out.NumRows(), len(want))
	}
	for i, tup := range out.Tuples {
		if tup[1].Int() != want[i][0] || tup[3].Int() != want[i][1] {
			t.Errorf("row %d = (%v, %v), want %v", i, tup[1], tup[3], want[i])
		}
	}
}

// TestJoinRowOrderDifferential joins random relations with every variant
// and requires identical output — row for row, in the same order — across
// HashJoin (both build directions), MergeJoin and NestedLoopJoin.
func TestJoinRowOrderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nl, nr := rng.Intn(12), rng.Intn(12)
		mk := func(n int) Rel {
			out := Rel{Cols: []string{"k", "v"}}
			for i := 0; i < n; i++ {
				out.Tuples = append(out.Tuples, iv(int64(rng.Intn(4)), int64(i)))
			}
			// Sorted by key so MergeJoin's contract holds; the payload
			// column keeps tuples distinguishable.
			sort.SliceStable(out.Tuples, func(a, b int) bool {
				return out.Tuples[a][0].Int() < out.Tuples[b][0].Int()
			})
			return out
		}
		l, r := mk(nl), mk(nr)

		hj, _ := HashJoin(l, r, []int{0}, []int{0})
		mj, _ := MergeJoin(l, r, []int{0}, []int{0})
		nj, _ := NestedLoopJoin(l, r, func(lt, rt []types.Value) bool {
			return types.Equal(lt[0], rt[0])
		})
		if !reflect.DeepEqual(hj.Tuples, mj.Tuples) {
			t.Fatalf("trial %d (|l|=%d |r|=%d): hash != merge\nhash:  %v\nmerge: %v",
				trial, nl, nr, hj.Tuples, mj.Tuples)
		}
		if !reflect.DeepEqual(hj.Tuples, nj.Tuples) {
			t.Fatalf("trial %d (|l|=%d |r|=%d): hash != nested\nhash:   %v\nnested: %v",
				trial, nl, nr, hj.Tuples, nj.Tuples)
		}
	}
}

// TestJoinNullKeys pins NULL-key semantics: a NULL key matches a NULL key
// (types.Compare orders NULL equal to NULL, so this is exactly what a
// CmpEq filter predicate would do) and never matches a non-NULL key — and
// all three variants agree.
func TestJoinNullKeys(t *testing.T) {
	null := types.Null()
	l := Rel{Cols: []string{"k", "a"}, Tuples: [][]types.Value{
		{null, types.NewInt64(1)},
		{types.NewInt64(7), types.NewInt64(2)},
	}}
	r := Rel{Cols: []string{"k", "b"}, Tuples: [][]types.Value{
		{null, types.NewInt64(10)},
		{types.NewInt64(7), types.NewInt64(20)},
		{types.NewInt64(8), types.NewInt64(30)},
	}}
	// Sanity: this must mirror the filter-predicate behavior.
	if !storage.CmpEq.Eval(null, null) {
		t.Fatal("CmpEq.Eval(NULL, NULL) = false; join semantics must match it")
	}

	hj, _ := HashJoin(l, r, []int{0}, []int{0})
	mj, _ := MergeJoin(l, r, []int{0}, []int{0})
	nj, _ := NestedLoopJoin(l, r, func(lt, rt []types.Value) bool {
		return types.Equal(lt[0], rt[0])
	})
	// Expect (NULL,1,NULL,10) and (7,2,7,20): NULL==NULL matches, NULL
	// never matches 7, 8 or anything non-NULL.
	if hj.NumRows() != 2 {
		t.Fatalf("hash join rows = %d: %v", hj.NumRows(), hj.Tuples)
	}
	if !hj.Tuples[0][0].IsNull() || !hj.Tuples[0][2].IsNull() || hj.Tuples[0][3].Int() != 10 {
		t.Errorf("NULL-key row wrong: %v", hj.Tuples[0])
	}
	if hj.Tuples[1][1].Int() != 2 || hj.Tuples[1][3].Int() != 20 {
		t.Errorf("non-NULL row wrong: %v", hj.Tuples[1])
	}
	if !reflect.DeepEqual(hj.Tuples, mj.Tuples) || !reflect.DeepEqual(hj.Tuples, nj.Tuples) {
		t.Errorf("variants disagree on NULL keys:\nhash:   %v\nmerge:  %v\nnested: %v",
			hj.Tuples, mj.Tuples, nj.Tuples)
	}
}

// TestJoinObsSelectivityFinite checks joinObs' float64 selectivity stays a
// valid fraction (the int product l.NumRows()*r.NumRows() used to overflow
// on large relations; the computation now happens in float64).
func TestJoinObsSelectivityFinite(t *testing.T) {
	l := rel([]string{"k"}, iv(1), iv(2))
	r := rel([]string{"k"}, iv(1), iv(2), iv(3))
	out, obs := HashJoin(l, r, []int{0}, []int{0})
	sel := obs.Features[4]
	want := float64(out.NumRows()) / (float64(l.NumRows()) * float64(r.NumRows()))
	if sel != want || sel < 0 || sel > 1 {
		t.Errorf("selectivity = %v, want %v", sel, want)
	}
}
