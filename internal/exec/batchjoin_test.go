package exec

// Differential tests for the batch-native hash join: BatchHashJoin must
// produce exactly the rows of the row HashJoin, in the same left-major
// order, across typed int keys, string keys, NULL keys, empty and
// duplicate-heavy inputs, encoded key vectors, projection pushdown, and
// the grace-spill path. The row joins are the oracle: they are simple,
// heavily tested, and pinned against MergeJoin/NestedLoopJoin already.

import (
	"math/rand"
	"reflect"
	"testing"

	"proteus/internal/disksim"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// tuplesEqual compares two tuple sets row for row (nil and empty agree).
func tuplesEqual(t *testing.T, got, want [][]types.Value, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: rows = %d, want %d\ngot:  %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: row %d = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// batchJoinOracle runs BatchHashJoin and the row HashJoin on the same
// inputs and requires identical output, row for row.
func batchJoinOracle(t *testing.T, l, r Rel, spill *JoinSpill, ctx string) {
	t.Helper()
	want, _ := HashJoin(l, r, []int{0}, []int{0})
	lc, rc := ColRelFromRel(l), ColRelFromRel(r)
	out, obs, err := BatchHashJoin(&lc, &rc, 0, 0, spill, nil, nil)
	if err != nil {
		t.Fatalf("%s: BatchHashJoin: %v", ctx, err)
	}
	if !reflect.DeepEqual(out.Cols, want.Cols) {
		t.Fatalf("%s: cols = %v, want %v", ctx, out.Cols, want.Cols)
	}
	tuplesEqual(t, out.Rel().Tuples, want.Tuples, ctx)
	if out.NumRows() > 0 && obs.Latency <= 0 {
		t.Errorf("%s: missing latency in observation", ctx)
	}
}

// TestBatchHashJoinDifferential joins randomized relations — int keys and
// string keys, duplicate-heavy domains, occasional NULL keys, empty
// sides — and requires exact agreement with the row HashJoin.
func TestBatchHashJoinDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randKey := func(strKeys bool) types.Value {
		if rng.Intn(10) == 0 {
			return types.Null()
		}
		k := rng.Intn(5) // small domain: heavy duplication
		if strKeys {
			return types.NewString([]string{"a", "bb", "ccc", "dd", "e"}[k])
		}
		return types.NewInt64(int64(k))
	}
	for trial := 0; trial < 80; trial++ {
		strKeys := trial%2 == 1
		mk := func(n int, payload string) Rel {
			out := Rel{Cols: []string{"k", payload}}
			for i := 0; i < n; i++ {
				out.Tuples = append(out.Tuples,
					[]types.Value{randKey(strKeys), types.NewInt64(int64(i))})
			}
			return out
		}
		nl, nr := rng.Intn(30), rng.Intn(30)
		if trial < 4 {
			// Force the empty-side cases deterministically.
			nl, nr = trial/2*7, trial%2*7
		}
		batchJoinOracle(t, mk(nl, "la"), mk(nr, "rb"), nil, "trial")
	}
}

// TestBatchHashJoinMixedWidths joins relations with several payload
// columns of different kinds, so late materialization gathers int, float
// and string vectors (and a NULL-bearing one) side by side.
func TestBatchHashJoinMixedWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(n int, side string) Rel {
		out := Rel{Cols: []string{side + "k", side + "i", side + "f", side + "s"}}
		for i := 0; i < n; i++ {
			f := types.NewFloat64(float64(rng.Intn(100)) / 4)
			if rng.Intn(8) == 0 {
				f = types.Null()
			}
			out.Tuples = append(out.Tuples, []types.Value{
				types.NewInt64(int64(rng.Intn(6))),
				types.NewInt64(int64(i)),
				f,
				types.NewString([]string{"x", "y", "zz"}[rng.Intn(3)]),
			})
		}
		return out
	}
	batchJoinOracle(t, mk(25, "l"), mk(40, "r"), nil, "mixed widths")
}

// TestBatchHashJoinEncodedKeys joins directly over encoded key vectors —
// frame-of-reference int codes and dictionary string codes — without
// decoding them first, and checks the result against the boxed join of
// the decoded equivalents.
func TestBatchHashJoinEncodedKeys(t *testing.T) {
	// FoR-encoded left key: value(i) = 1000 + code.
	l := ColRel{Cols: []string{"k", "la"}, Vecs: make([]storage.Vec, 2)}
	lCodes := []uint32{0, 2, 1, 2, 0, 3}
	l.Vecs[0] = storage.FoRVec(types.KindInt64, 1000, lCodes)
	for i := range lCodes {
		l.Vecs[1].Append(types.NewInt64(int64(i)))
	}
	l.SetRows(len(lCodes))

	// Plain right key overlapping the FoR frame.
	r := NewColRel([]string{"k", "rb"})
	for i, k := range []int64{1002, 1000, 999, 1003, 1002} {
		r.Vecs[0].Append(types.NewInt64(k))
		r.Vecs[1].Append(types.NewInt64(int64(100 + i)))
	}
	r.SetRows(5)

	want, _ := HashJoin(l.Rel(), r.Rel(), []int{0}, []int{0})
	out, _, err := BatchHashJoin(&l, &r, 0, 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, out.Rel().Tuples, want.Tuples, "FoR keys")

	// Dictionary-encoded string keys on both sides.
	dict := []string{"ant", "bee", "cat"}
	dl := ColRel{Cols: []string{"k", "la"}, Vecs: make([]storage.Vec, 2)}
	dlCodes := []uint32{2, 0, 1, 0}
	dl.Vecs[0] = storage.DictVec(dlCodes, dict)
	for i := range dlCodes {
		dl.Vecs[1].Append(types.NewInt64(int64(i)))
	}
	dl.SetRows(len(dlCodes))
	dr := NewColRel([]string{"k", "rb"})
	for i, s := range []string{"bee", "cat", "dog", "ant"} {
		dr.Vecs[0].Append(types.NewString(s))
		dr.Vecs[1].Append(types.NewInt64(int64(200 + i)))
	}
	dr.SetRows(4)
	want, _ = HashJoin(dl.Rel(), dr.Rel(), []int{0}, []int{0})
	out, _, err = BatchHashJoin(&dl, &dr, 0, 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, out.Rel().Tuples, want.Tuples, "dict keys")
}

// TestBatchHashJoinIntegralFloatKeys pins the float canonicalization: a
// null-free float key column of integral values must hash/compare like
// the equivalent ints (matching types.Value.Hash), and a fractional value
// must force the boxed path without changing the result.
func TestBatchHashJoinIntegralFloatKeys(t *testing.T) {
	for _, fractional := range []bool{false, true} {
		l := Rel{Cols: []string{"k", "la"}}
		r := Rel{Cols: []string{"k", "rb"}}
		for i := 0; i < 20; i++ {
			k := float64(i % 4)
			if fractional && i == 7 {
				k = 2.5
			}
			l.Tuples = append(l.Tuples, []types.Value{types.NewFloat64(k), types.NewInt64(int64(i))})
		}
		for i := 0; i < 15; i++ {
			r.Tuples = append(r.Tuples, []types.Value{types.NewFloat64(float64(i % 5)), types.NewInt64(int64(i))})
		}
		if fractional {
			r.Tuples[3][0] = types.NewFloat64(2.5)
		}
		batchJoinOracle(t, l, r, nil, "float keys")
	}
}

// TestBatchHashJoinProjection checks projL/projR late materialization:
// only the requested columns come back, labeled and ordered as requested,
// with values matching the corresponding columns of the full join.
func TestBatchHashJoinProjection(t *testing.T) {
	l := rel([]string{"lk", "la", "lb"},
		iv(1, 10, 11), iv(2, 20, 21), iv(1, 30, 31))
	r := rel([]string{"rk", "ra"}, iv(1, 100), iv(2, 200), iv(1, 300))
	lc, rc := ColRelFromRel(l), ColRelFromRel(r)
	full, _, err := BatchHashJoin(&lc, &rc, 0, 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Project left col 2 ("lb") and right cols 1,0 ("ra","rk").
	proj, _, err := BatchHashJoin(&lc, &rc, 0, 0, nil, []int{2}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(proj.Cols, []string{"lb", "ra", "rk"}) {
		t.Fatalf("cols = %v", proj.Cols)
	}
	if proj.NumRows() != full.NumRows() {
		t.Fatalf("rows = %d, want %d", proj.NumRows(), full.NumRows())
	}
	fr, pr := full.Rel(), proj.Rel()
	for i := range pr.Tuples {
		wantRow := []types.Value{fr.Tuples[i][2], fr.Tuples[i][4], fr.Tuples[i][3]}
		if !reflect.DeepEqual(pr.Tuples[i], wantRow) {
			t.Fatalf("row %d = %v, want %v", i, pr.Tuples[i], wantRow)
		}
	}
	// Empty projections are legal: zero columns, correct row count.
	none, _, err := BatchHashJoin(&lc, &rc, 0, 0, nil, []int{}, []int{})
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Cols) != 0 || none.NumRows() != full.NumRows() {
		t.Fatalf("empty projection: cols=%v rows=%d", none.Cols, none.NumRows())
	}
}

// TestBatchHashJoinSpill forces the grace-spill path with a tiny budget
// and a zero-latency disksim device: output must still match the row
// HashJoin exactly (the pair sort restores left-major order), and the
// spill counters must move — including the recursion counter, since every
// partition of a duplicate-heavy key set re-exceeds a 1-byte budget.
func TestBatchHashJoinSpill(t *testing.T) {
	spill := &JoinSpill{Device: disksim.New(disksim.Config{}), Budget: 1}
	rng := rand.New(rand.NewSource(23))
	mk := func(n int, strKeys bool) Rel {
		out := Rel{Cols: []string{"k", "v"}}
		for i := 0; i < n; i++ {
			var k types.Value
			switch {
			case rng.Intn(20) == 0:
				k = types.Null()
			case strKeys:
				k = types.NewString([]string{"aa", "b", "ccc"}[rng.Intn(3)])
			default:
				k = types.NewInt64(int64(rng.Intn(50)))
			}
			out.Tuples = append(out.Tuples, []types.Value{k, types.NewInt64(int64(i))})
		}
		return out
	}
	for _, strKeys := range []bool{false, true} {
		before := ReadJoinStats()
		batchJoinOracle(t, mk(300, strKeys), mk(200, strKeys), spill, "spill")
		d := ReadJoinStats()
		if d.SpillPartitions <= before.SpillPartitions {
			t.Fatal("spill partitions counter did not move; spill path not taken")
		}
		if d.SpillBytes <= before.SpillBytes {
			t.Fatal("spill bytes counter did not move")
		}
		if d.SpillRecursions <= before.SpillRecursions {
			t.Fatal("expected recursive repartitioning under a 1-byte budget")
		}
	}
}

// TestBatchHashJoinSpillThreshold pins the budget gate: a build side under
// budget must not spill, a negative/zero budget disables spilling.
func TestBatchHashJoinSpillThreshold(t *testing.T) {
	l := rel([]string{"k", "v"}, iv(1, 10), iv(2, 20))
	r := rel([]string{"k", "v"}, iv(1, 100), iv(2, 200))
	for _, sp := range []*JoinSpill{
		nil,
		{Device: disksim.New(disksim.Config{}), Budget: 0},
		{Device: disksim.New(disksim.Config{}), Budget: 1 << 30},
	} {
		before := ReadJoinStats().SpillPartitions
		batchJoinOracle(t, l, r, sp, "no spill expected")
		if after := ReadJoinStats().SpillPartitions; after != before {
			t.Fatalf("join spilled with spill=%+v", sp)
		}
	}
}

// TestKeySetSerializationRoundTrip round-trips typed and boxed key sets
// through the spill codec, including NULLs, strings and floats.
func TestKeySetSerializationRoundTrip(t *testing.T) {
	typed := keySet{kc: keyCol{ints: []int64{5, -1, 1 << 40}}, idx: []int32{7, 0, 3}}
	got, err := deserializeKeySet(serializeKeySet(typed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.kc.ints, typed.kc.ints) || !reflect.DeepEqual(got.idx, typed.idx) {
		t.Fatalf("typed round trip: %+v", got)
	}
	boxed := keySet{kc: keyCol{vals: []types.Value{
		types.NewString("hello"), types.Null(), types.NewFloat64(2.5), types.NewInt64(-9),
	}}, idx: []int32{2, 9, 4, 1}}
	got, err = deserializeKeySet(serializeKeySet(boxed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.idx, boxed.idx) {
		t.Fatalf("boxed idx round trip: %+v", got.idx)
	}
	for i, v := range boxed.kc.vals {
		if !types.Equal(got.kc.vals[i], v) {
			t.Fatalf("boxed val %d: %v, want %v", i, got.kc.vals[i], v)
		}
	}
	if _, err := deserializeKeySet([]byte{1, 2}); err == nil {
		t.Error("truncated block must error")
	}
}

// TestMergeJoinSortedContractAssertion enables the debug-build invariant
// checks and verifies MergeJoin panics on unsorted input instead of
// silently returning wrong rows (the sorted-input contract regression
// test; release builds skip the check entirely).
func TestMergeJoinSortedContractAssertion(t *testing.T) {
	saved := debugChecks
	debugChecks = true
	defer func() { debugChecks = saved }()

	sorted := rel([]string{"k"}, iv(1), iv(2), iv(3))
	unsorted := rel([]string{"k"}, iv(2), iv(1), iv(3))

	func() {
		defer func() {
			if recover() == nil {
				t.Error("MergeJoin accepted an unsorted left input with debug checks on")
			}
		}()
		MergeJoin(unsorted, sorted, []int{0}, []int{0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MergeJoin accepted an unsorted right input with debug checks on")
			}
		}()
		MergeJoin(sorted, unsorted, []int{0}, []int{0})
	}()
	// Sorted inputs must pass the assertion untouched.
	out, _ := MergeJoin(sorted, sorted, []int{0}, []int{0})
	if out.NumRows() != 3 {
		t.Errorf("sorted merge join rows = %d", out.NumRows())
	}
}

// TestRuntimeFilterSemantics pins the runtime-filter contract: every build
// key passes, absent keys are (mostly) rejected, bounds predicates exist
// exactly when the build side is non-empty and NULL-free, and an empty
// build side reports Empty.
func TestRuntimeFilterSemantics(t *testing.T) {
	build := NewColRel([]string{"k"})
	for _, k := range []int64{10, 20, 30, 20} {
		build.Vecs[0].Append(types.NewInt64(k))
	}
	build.SetRows(4)
	f := BuildRuntimeFilter(&build, 0)
	if f.Empty() {
		t.Fatal("filter over 4 rows reports empty")
	}
	for _, k := range []int64{10, 20, 30} {
		if !f.TestValue(types.NewInt64(k)) {
			t.Errorf("build key %d rejected", k)
		}
	}
	bounds := f.BoundsPred(schema.ColID(5))
	if len(bounds) != 2 || bounds[0].Val.Int() != 10 || bounds[1].Val.Int() != 30 {
		t.Fatalf("bounds = %+v", bounds)
	}
	rejected := 0
	for k := int64(1000); k < 1100; k++ {
		if !f.TestValue(types.NewInt64(k)) {
			rejected++
		}
	}
	if rejected < 90 {
		t.Errorf("Bloom filter rejected only %d/100 absent keys", rejected)
	}

	// A NULL build key suppresses the bounds predicate (Eval would drop
	// NULL probe rows that the join must keep) but not the Bloom filter.
	withNull := NewColRel([]string{"k"})
	withNull.Vecs[0].Append(types.NewInt64(1))
	withNull.Vecs[0].Append(types.Null())
	withNull.SetRows(2)
	fn := BuildRuntimeFilter(&withNull, 0)
	if fn.BoundsPred(0) != nil {
		t.Error("bounds predicate must be suppressed when the build side has NULL keys")
	}
	if !fn.TestValue(types.Null()) {
		t.Error("NULL probe key must pass a filter built from a NULL build key")
	}

	empty := NewColRel([]string{"k"})
	fe := BuildRuntimeFilter(&empty, 0)
	if !fe.Empty() || fe.BoundsPred(0) != nil {
		t.Error("empty build side: Empty() must hold and bounds must be nil")
	}
	var nilF *RuntimeFilter
	if !nilF.Empty() {
		t.Error("nil filter must report empty")
	}
}

// TestRuntimeFilterBatchPaths runs FilterBatch over every key-vector shape
// it special-cases — FoR codes, dictionary codes, raw int64, and the boxed
// fallback — and requires the surviving selection to match per-row
// TestValue exactly (no false negatives, identical false positives).
func TestRuntimeFilterBatchPaths(t *testing.T) {
	build := NewColRel([]string{"k"})
	for _, k := range []int64{3, 5, 9} {
		build.Vecs[0].Append(types.NewInt64(k))
	}
	build.SetRows(3)
	f := BuildRuntimeFilter(&build, 0)

	strBuild := NewColRel([]string{"k"})
	for _, s := range []string{"bee", "cat"} {
		strBuild.Vecs[0].Append(types.NewString(s))
	}
	strBuild.SetRows(2)
	fs := BuildRuntimeFilter(&strBuild, 0)

	codes := []uint32{0, 1, 2, 3, 4, 5, 1, 3}
	mkBatch := func(v storage.Vec, sel []int32) *storage.Batch {
		ids := make([]schema.RowID, v.Len())
		for i := range ids {
			ids[i] = schema.RowID(i)
		}
		b := &storage.Batch{Vecs: []storage.Vec{v}, Sel: sel}
		b.SetRowIDsView(ids)
		return b
	}
	check := func(name string, f *RuntimeFilter, b *storage.Batch) {
		t.Helper()
		v := &b.Vecs[0]
		var want []int32
		b.Selected(func(r int) bool {
			if f.TestValue(v.Value(r)) {
				want = append(want, int32(r))
			}
			return true
		})
		got := f.FilterBatch(b, 0, nil)
		if !reflect.DeepEqual([]int32(got), want) {
			t.Errorf("%s: sel = %v, want %v", name, got, want)
		}
	}
	check("FoR", f, mkBatch(storage.FoRVec(types.KindInt64, 2, codes), nil))
	check("FoR+sel", f, mkBatch(storage.FoRVec(types.KindInt64, 2, codes), []int32{0, 3, 5, 7}))
	check("dict", fs, mkBatch(storage.DictVec(codes[:6], []string{"ant", "bee", "cat", "dog", "eel", "fox"}), nil))
	intVec := storage.Vec{}
	for _, k := range []int64{1, 3, 5, 7, 9, 11} {
		intVec.Append(types.NewInt64(k))
	}
	check("int64", f, mkBatch(intVec, nil))
	boxVec := storage.Vec{}
	boxVec.Append(types.NewInt64(3))
	boxVec.Append(types.Null())
	boxVec.Append(types.NewInt64(9))
	boxVec.Append(types.NewInt64(4))
	check("boxed", f, mkBatch(boxVec, nil))

	// FilterCols: the materialized-input counterpart must agree too.
	probe := NewColRel([]string{"k", "v"})
	for i := int64(0); i < 12; i++ {
		probe.Vecs[0].Append(types.NewInt64(i))
		probe.Vecs[1].Append(types.NewInt64(100 + i))
	}
	probe.SetRows(12)
	got := f.FilterCols(&probe, 0)
	gr := got.Rel()
	for _, tup := range gr.Tuples {
		if !f.TestValue(tup[0]) {
			t.Errorf("FilterCols kept rejected key %v", tup[0])
		}
	}
	kept := map[int64]bool{}
	for _, tup := range gr.Tuples {
		kept[tup[0].Int()] = true
	}
	for _, k := range []int64{3, 5, 9} {
		if !kept[k] {
			t.Errorf("FilterCols dropped build key %d", k)
		}
	}
}

// TestBatchJoinThenAggregate fuses a batch join into the grouped
// aggregator via ObserveCols and checks the result against the row
// pipeline (HashJoin + HashAggregate) — the join→group-by fusion path the
// cluster executor uses for aggregates over joins.
func TestBatchJoinThenAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := Rel{Cols: []string{"k", "g", "x"}}
	r := Rel{Cols: []string{"k", "y"}}
	for i := 0; i < 60; i++ {
		l.Tuples = append(l.Tuples, []types.Value{
			types.NewInt64(int64(rng.Intn(8))),
			types.NewInt64(int64(rng.Intn(3))),
			types.NewFloat64(float64(rng.Intn(100)) / 2),
		})
	}
	for i := 0; i < 40; i++ {
		r.Tuples = append(r.Tuples, []types.Value{
			types.NewInt64(int64(rng.Intn(8))),
			types.NewInt64(int64(i)),
		})
	}
	groupBy := []int{1}
	specs := []AggSpec{{Func: AggCount}, {Func: AggSum, Col: 2}, {Func: AggMin, Col: 4}, {Func: AggAvg, Col: 2}}

	rowJoin, _ := HashJoin(l, r, []int{0}, []int{0})
	want, _ := HashAggregate(rowJoin, groupBy, specs)

	lc, rc := ColRelFromRel(l), ColRelFromRel(r)
	joined, _, err := BatchHashJoin(&lc, &rc, 0, 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(groupBy, specs)
	agg.ObserveCols(&joined)
	got := agg.Rel(joined.Cols)

	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("groups = %d, want %d", len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		for c := range want.Tuples[i] {
			g, w := got.Tuples[i][c], want.Tuples[i][c]
			if g.K == types.KindFloat64 && w.K == types.KindFloat64 {
				d := g.Float() - w.Float()
				if d < 0 {
					d = -d
				}
				lim := 1e-9 * (1 + w.Float())
				if lim < 0 {
					lim = -lim
				}
				if d > lim {
					t.Fatalf("group %d col %d: %v, want %v", i, c, g, w)
				}
				continue
			}
			if types.Compare(g, w) != 0 {
				t.Fatalf("group %d col %d: %v, want %v", i, c, g, w)
			}
		}
	}
}
