// Package schema models relational schemas: tables identified by stable IDs,
// typed columns, and primary keys expressed as dense row identifiers
// (row_id). Partitions in Proteus are contiguous ranges of row_ids and
// column indexes over these tables (§2.1 of the paper).
package schema

import (
	"fmt"
	"sync"

	"proteus/internal/types"
)

// TableID identifies a table within a catalog.
type TableID int32

// ColID identifies a column by its position within the table schema.
type ColID int32

// RowID is the primary key of a row: a dense 64-bit identifier. Workloads
// map their natural keys onto row_ids (e.g. TPC-C composes warehouse /
// district / order numbers into one integer).
type RowID int64

// Column describes one table column.
type Column struct {
	Name string
	Kind types.Kind
	// AvgSize is the estimated average encoded size in bytes, maintained by
	// the catalog from observed values and used by the ASA's space and cost
	// estimates (§5.1).
	AvgSize float64
}

// Table describes a relational table.
type Table struct {
	ID      TableID
	Name    string
	Columns []Column

	colByName map[string]ColID
}

// NewTable constructs a table definition. Column names must be unique.
func NewTable(id TableID, name string, cols []Column) (*Table, error) {
	t := &Table{ID: id, Name: name, Columns: cols, colByName: make(map[string]ColID, len(cols))}
	for i, c := range cols {
		if _, dup := t.colByName[c.Name]; dup {
			return nil, fmt.Errorf("table %s: duplicate column %q", name, c.Name)
		}
		t.colByName[c.Name] = ColID(i)
	}
	return t, nil
}

// ColumnID resolves a column name to its ID.
func (t *Table) ColumnID(name string) (ColID, bool) {
	id, ok := t.colByName[name]
	return id, ok
}

// NumColumns reports the number of columns.
func (t *Table) NumColumns() int { return len(t.Columns) }

// Kinds returns the column kinds in order.
func (t *Table) Kinds() []types.Kind {
	ks := make([]types.Kind, len(t.Columns))
	for i, c := range t.Columns {
		ks[i] = c.Kind
	}
	return ks
}

// RowWidth reports the fixed in-memory row-format width of a row restricted
// to cols, plus the trailing 8-byte previous-version pointer slot (§4.1.1).
func (t *Table) RowWidth(cols []ColID) int {
	w := 0
	for _, c := range cols {
		w += t.Columns[c].Kind.FixedWidth()
	}
	return w + 8
}

// Catalog is a concurrent registry of tables.
type Catalog struct {
	mu     sync.RWMutex
	byID   map[TableID]*Table
	byName map[string]*Table
	nextID TableID
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byID: make(map[TableID]*Table), byName: make(map[string]*Table)}
}

// Create defines a new table and returns it.
func (c *Catalog) Create(name string, cols []Column) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.byName[name]; exists {
		return nil, fmt.Errorf("table %q already exists", name)
	}
	t, err := NewTable(c.nextID, name, cols)
	if err != nil {
		return nil, err
	}
	c.nextID++
	c.byID[t.ID] = t
	c.byName[name] = t
	return t, nil
}

// Table looks a table up by ID.
func (c *Catalog) Table(id TableID) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.byID[id]
	return t, ok
}

// TableByName looks a table up by name.
func (c *Catalog) TableByName(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.byName[name]
	return t, ok
}

// Tables returns all tables in creation order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.byID))
	for id := TableID(0); id < c.nextID; id++ {
		if t, ok := c.byID[id]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Row is a fully materialized tuple keyed by RowID. Values are positional
// over the owning table's columns (or a projection of them).
type Row struct {
	ID   RowID
	Vals []types.Value
}

// Clone deep-copies the row.
func (r Row) Clone() Row {
	vals := make([]types.Value, len(r.Vals))
	copy(vals, r.Vals)
	return Row{ID: r.ID, Vals: vals}
}
