package schema

import (
	"testing"

	"proteus/internal/types"
)

func orderlineCols() []Column {
	return []Column{
		{Name: "order_id", Kind: types.KindInt64},
		{Name: "item_id", Kind: types.KindInt64},
		{Name: "quantity", Kind: types.KindFloat64},
		{Name: "amount", Kind: types.KindFloat64},
		{Name: "delivery", Kind: types.KindTime},
	}
}

func TestCatalogCreateAndLookup(t *testing.T) {
	c := NewCatalog()
	tbl, err := c.Create("orderline", orderlineCols())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != "orderline" || tbl.NumColumns() != 5 {
		t.Errorf("bad table: %+v", tbl)
	}
	got, ok := c.Table(tbl.ID)
	if !ok || got != tbl {
		t.Error("Table by ID failed")
	}
	got, ok = c.TableByName("orderline")
	if !ok || got != tbl {
		t.Error("TableByName failed")
	}
	if _, ok := c.TableByName("missing"); ok {
		t.Error("lookup of missing table succeeded")
	}
}

func TestCatalogDuplicateTable(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Create("t", orderlineCols()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("t", orderlineCols()); err == nil {
		t.Error("expected duplicate-table error")
	}
}

func TestDuplicateColumn(t *testing.T) {
	cols := []Column{{Name: "a", Kind: types.KindInt64}, {Name: "a", Kind: types.KindInt64}}
	if _, err := NewTable(0, "bad", cols); err == nil {
		t.Error("expected duplicate-column error")
	}
}

func TestColumnID(t *testing.T) {
	tbl, _ := NewTable(1, "orderline", orderlineCols())
	id, ok := tbl.ColumnID("amount")
	if !ok || id != 3 {
		t.Errorf("ColumnID(amount) = %d, %v", id, ok)
	}
	if _, ok := tbl.ColumnID("nope"); ok {
		t.Error("found nonexistent column")
	}
}

func TestRowWidth(t *testing.T) {
	// Paper example (§4.1.1): two ints + decimal + decimal + timestamp rows
	// are stored in 8-byte slots here (we use 64-bit ints) plus the trailing
	// 8-byte version pointer.
	tbl, _ := NewTable(1, "orderline", orderlineCols())
	all := []ColID{0, 1, 2, 3, 4}
	if w := tbl.RowWidth(all); w != 5*8+8 {
		t.Errorf("RowWidth = %d, want 48", w)
	}
	if w := tbl.RowWidth([]ColID{4}); w != 16 {
		t.Errorf("RowWidth(delivery) = %d, want 16", w)
	}
}

func TestKinds(t *testing.T) {
	tbl, _ := NewTable(1, "orderline", orderlineCols())
	ks := tbl.Kinds()
	if len(ks) != 5 || ks[0] != types.KindInt64 || ks[4] != types.KindTime {
		t.Errorf("Kinds = %v", ks)
	}
}

func TestTablesOrder(t *testing.T) {
	c := NewCatalog()
	names := []string{"a", "b", "c"}
	for _, n := range names {
		if _, err := c.Create(n, orderlineCols()); err != nil {
			t.Fatal(err)
		}
	}
	tables := c.Tables()
	if len(tables) != 3 {
		t.Fatalf("got %d tables", len(tables))
	}
	for i, tbl := range tables {
		if tbl.Name != names[i] {
			t.Errorf("tables[%d] = %s, want %s", i, tbl.Name, names[i])
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{ID: 7, Vals: []types.Value{types.NewInt64(1)}}
	c := r.Clone()
	c.Vals[0] = types.NewInt64(2)
	if r.Vals[0].Int() != 1 {
		t.Error("clone aliases original")
	}
}
