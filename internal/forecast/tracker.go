// Package forecast implements Proteus' access-arrival estimation (§5.2.2):
// per-partition access tracking at two time granularities (the paper's
// 5-minute-for-a-day and hourly-for-a-month windows, scaled down for
// laptop-scale runs), a sparse periodic auto-regression (SPAR) predictor,
// and a hybrid ensemble combining a recurrent network, a linear trend and
// a user-configurable holiday list. Periodicity is auto-detected by
// autocorrelation, so the ensemble needs no user-defined period.
package forecast

import (
	"sync"
	"time"
)

// AccessKind distinguishes the tracked access types (§5.1).
type AccessKind uint8

const (
	// Update covers inserts, updates and deletes.
	Update AccessKind = iota
	// PointRead covers keyed single-row reads.
	PointRead
	// Scan covers range scans.
	Scan
	numKinds
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case Update:
		return "update"
	case PointRead:
		return "pointread"
	case Scan:
		return "scan"
	}
	return "?"
}

// series is a ring of per-interval counts.
type series struct {
	interval time.Duration
	buckets  []float64
	head     int       // index of the current bucket
	headTime time.Time // start of the current bucket
}

func newSeries(interval time.Duration, n int, now time.Time) *series {
	return &series{interval: interval, buckets: make([]float64, n), headTime: now}
}

// advance rolls the ring forward to cover now.
func (s *series) advance(now time.Time) {
	for now.Sub(s.headTime) >= s.interval {
		s.head = (s.head + 1) % len(s.buckets)
		s.buckets[s.head] = 0
		s.headTime = s.headTime.Add(s.interval)
	}
}

func (s *series) add(now time.Time, n float64) {
	s.advance(now)
	s.buckets[s.head] += n
}

// values returns the counts oldest-first, ending at the current bucket.
func (s *series) values(now time.Time) []float64 {
	s.advance(now)
	out := make([]float64, len(s.buckets))
	for i := range out {
		out[i] = s.buckets[(s.head+1+i)%len(s.buckets)]
	}
	return out
}

// Config sizes a tracker's two granularities.
type Config struct {
	FineInterval   time.Duration
	FineBuckets    int
	CoarseInterval time.Duration
	CoarseBuckets  int
	// Clock supplies time; nil means time.Now. Injectable for tests and
	// for replaying historical traces (model pre-training, Fig 12c).
	Clock func() time.Time
}

// DefaultConfig scales the paper's defaults (5-minute buckets for a day,
// hourly for a month) down to experiment scale: 250 ms buckets for 60 s,
// 5 s buckets for 20 min.
func DefaultConfig() Config {
	return Config{
		FineInterval: 250 * time.Millisecond, FineBuckets: 240,
		CoarseInterval: 5 * time.Second, CoarseBuckets: 240,
	}
}

// Tracker records one partition's accesses by kind over two granularities.
type Tracker struct {
	mu     sync.Mutex
	clock  func() time.Time
	fine   [numKinds]*series
	coarse [numKinds]*series
	total  [numKinds]float64
}

// NewTracker creates a tracker.
func NewTracker(cfg Config) *Tracker {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	now := clock()
	t := &Tracker{clock: clock}
	for k := AccessKind(0); k < numKinds; k++ {
		t.fine[k] = newSeries(cfg.FineInterval, cfg.FineBuckets, now)
		t.coarse[k] = newSeries(cfg.CoarseInterval, cfg.CoarseBuckets, now)
	}
	return t
}

// Record counts n accesses of the kind at the current time.
func (t *Tracker) Record(kind AccessKind, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	t.fine[kind].add(now, float64(n))
	t.coarse[kind].add(now, float64(n))
	t.total[kind] += float64(n)
}

// Fine returns the fine-grained series (oldest first).
func (t *Tracker) Fine(kind AccessKind) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fine[kind].values(t.clock())
}

// Coarse returns the coarse series (oldest first).
func (t *Tracker) Coarse(kind AccessKind) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.coarse[kind].values(t.clock())
}

// Total reports the lifetime access count for a kind.
func (t *Tracker) Total(kind AccessKind) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total[kind]
}

// RecentRate estimates accesses/second of the kind over the last w fine
// buckets.
func (t *Tracker) RecentRate(kind AccessKind, w int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	vals := t.fine[kind].values(t.clock())
	if w <= 0 || w > len(vals) {
		w = len(vals)
	}
	sum := 0.0
	for _, v := range vals[len(vals)-w:] {
		sum += v
	}
	window := t.fine[kind].interval * time.Duration(w)
	if window <= 0 {
		return 0
	}
	return sum / window.Seconds()
}

// FineInterval reports the fine bucket width.
func (t *Tracker) FineInterval() time.Duration {
	return t.fine[Update].interval
}
