package forecast

import (
	"math"

	"proteus/internal/learn"
)

// Predictor forecasts future values of an access-count series.
type Predictor interface {
	// Fit trains on a series (oldest first).
	Fit(series []float64)
	// Predict forecasts the value `ahead` steps past the series end
	// (ahead >= 1).
	Predict(series []float64, ahead int) float64
}

// SPAR is sparse periodic auto-regression (Chen et al., NSDI'08, as cited
// in §5.2.2): the next value is a learned combination of seasonal lags
// (multiples of a user-supplied period) and a short window of recent lags.
type SPAR struct {
	Period       int // user-defined period in buckets
	SeasonalLags int // how many seasonal lags to use
	RecentLags   int // how many immediate lags to use

	lin *learn.Linear
}

// NewSPAR creates a SPAR model.
func NewSPAR(period, seasonalLags, recentLags int) *SPAR {
	if period < 1 {
		period = 1
	}
	if seasonalLags < 1 {
		seasonalLags = 1
	}
	if recentLags < 1 {
		recentLags = 1
	}
	return &SPAR{
		Period: period, SeasonalLags: seasonalLags, RecentLags: recentLags,
		lin: learn.NewLinear(seasonalLags+recentLags, 1e-3),
	}
}

// features builds the lag vector predicting index t of the series.
func (s *SPAR) features(series []float64, t int) []float64 {
	x := make([]float64, 0, s.SeasonalLags+s.RecentLags)
	for i := 1; i <= s.SeasonalLags; i++ {
		idx := t - i*s.Period
		if idx >= 0 {
			x = append(x, series[idx])
		} else {
			x = append(x, 0)
		}
	}
	for j := 1; j <= s.RecentLags; j++ {
		idx := t - j
		if idx >= 0 {
			x = append(x, series[idx])
		} else {
			x = append(x, 0)
		}
	}
	return x
}

// Fit implements Predictor.
func (s *SPAR) Fit(series []float64) {
	start := s.Period
	if start < s.RecentLags {
		start = s.RecentLags
	}
	for t := start; t < len(series); t++ {
		s.lin.Observe(s.features(series, t), series[t])
	}
}

// Predict implements Predictor, iterating one-step forecasts for ahead > 1.
func (s *SPAR) Predict(series []float64, ahead int) float64 {
	ext := append([]float64(nil), series...)
	var y float64
	for i := 0; i < ahead; i++ {
		y = s.lin.Predict(s.features(ext, len(ext)))
		if y < 0 {
			y = 0
		}
		ext = append(ext, y)
	}
	return y
}

// DetectPeriod finds the lag (2..maxLag) with maximal autocorrelation,
// returning 0 when no lag shows meaningful correlation — this is how the
// hybrid ensemble "automatically learns the periodicity of the workload
// without requiring a user-defined period" (§5.2.2).
func DetectPeriod(series []float64, maxLag int) int {
	n := len(series)
	if n < 8 {
		return 0
	}
	if maxLag > n/2 {
		maxLag = n / 2
	}
	mean := 0.0
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	den := 0.0
	for _, v := range series {
		den += (v - mean) * (v - mean)
	}
	if den == 0 {
		return 0
	}
	bestLag, bestCorr := 0, 0.3 // threshold: require meaningful correlation
	for lag := 2; lag <= maxLag; lag++ {
		num := 0.0
		for i := lag; i < n; i++ {
			num += (series[i] - mean) * (series[i-lag] - mean)
		}
		corr := num / den
		if corr > bestCorr {
			bestCorr, bestLag = corr, lag
		}
	}
	return bestLag
}

// Hybrid is the ensemble predictor of §5.2.2: a recurrent network, a
// linear trend, and a holiday list of known non-periodic events. Each
// component forecasts independently; the ensemble averages the RNN and
// trend and then applies any holiday multiplier.
type Hybrid struct {
	// Window is the RNN input width in buckets.
	Window int
	// Holidays maps absolute bucket indexes (series end = index len-1;
	// the forecast for end+ahead consults index len-1+ahead) to expected
	// demand multipliers — e.g. a Black-Friday-style 3x spike.
	Holidays map[int]float64

	rnn    *learn.RNN
	trendA float64 // slope per bucket
	trendB float64 // level at series end
	fitted bool
}

// NewHybrid creates a hybrid ensemble with the given RNN window.
func NewHybrid(window int, seed int64) *Hybrid {
	if window < 2 {
		window = 2
	}
	return &Hybrid{Window: window, rnn: learn.NewRNN(8, 0.05, seed), Holidays: map[int]float64{}}
}

// Fit implements Predictor: trains the RNN on sliding windows and fits the
// trend by least squares over the series tail.
func (h *Hybrid) Fit(series []float64) {
	for i := 0; i+h.Window < len(series); i++ {
		h.rnn.Train(series[i:i+h.Window], series[i+h.Window])
	}
	// Linear trend over up to the last 4 windows of data.
	tail := series
	if len(tail) > 4*h.Window {
		tail = tail[len(tail)-4*h.Window:]
	}
	n := float64(len(tail))
	if n >= 2 {
		var sx, sy, sxx, sxy float64
		for i, v := range tail {
			x := float64(i)
			sx += x
			sy += v
			sxx += x * x
			sxy += x * v
		}
		den := n*sxx - sx*sx
		if den != 0 {
			h.trendA = (n*sxy - sx*sy) / den
			h.trendB = (sy - h.trendA*sx) / n // level at tail start
			h.trendB += h.trendA * (n - 1)    // shift level to series end
		}
	}
	h.fitted = true
}

// Predict implements Predictor.
func (h *Hybrid) Predict(series []float64, ahead int) float64 {
	if len(series) == 0 {
		return 0
	}
	// RNN component: iterate one-step forecasts.
	win := series
	if len(win) > h.Window {
		win = win[len(win)-h.Window:]
	}
	ext := append([]float64(nil), win...)
	var rnnPred float64
	for i := 0; i < ahead; i++ {
		rnnPred = h.rnn.Predict(ext)
		if rnnPred < 0 {
			rnnPred = 0
		}
		ext = append(ext, rnnPred)
		if len(ext) > h.Window {
			ext = ext[1:]
		}
	}
	// Trend component.
	trend := h.trendB + h.trendA*float64(ahead)
	if trend < 0 {
		trend = 0
	}
	pred := (rnnPred + trend) / 2
	if !h.fitted {
		pred = series[len(series)-1]
	}
	// Holiday adjustment for the target bucket.
	if mult, ok := h.Holidays[len(series)-1+ahead]; ok {
		pred *= mult
	}
	if math.IsNaN(pred) || pred < 0 {
		return 0
	}
	return pred
}

// ArrivalEstimate converts a predicted per-bucket access count into the
// (probability, expected delay in buckets) pair the ASA's net-benefit
// formula needs (Appendix A): Pr(T) = 1 - e^-rate, Δ(T) ≈ 1/rate.
func ArrivalEstimate(predictedCount float64) (prob, delayBuckets float64) {
	if predictedCount <= 0 {
		return 0, math.Inf(1)
	}
	return 1 - math.Exp(-predictedCount), 1 / predictedCount
}
