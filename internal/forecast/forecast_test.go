package forecast

import (
	"math"
	"testing"
	"time"
)

// fakeClock is an adjustable time source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time       { return f.t }
func (f *fakeClock) tick(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock            { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func testTracker(c *fakeClock) *Tracker {
	return NewTracker(Config{
		FineInterval: 100 * time.Millisecond, FineBuckets: 20,
		CoarseInterval: time.Second, CoarseBuckets: 10,
		Clock: c.now,
	})
}

func TestTrackerBuckets(t *testing.T) {
	c := newFakeClock()
	tr := testTracker(c)
	tr.Record(Update, 5)
	c.tick(100 * time.Millisecond)
	tr.Record(Update, 3)
	tr.Record(Scan, 1)

	fine := tr.Fine(Update)
	if fine[len(fine)-1] != 3 || fine[len(fine)-2] != 5 {
		t.Errorf("fine = %v", fine[len(fine)-3:])
	}
	if tr.Total(Update) != 8 || tr.Total(Scan) != 1 {
		t.Error("totals wrong")
	}
	coarse := tr.Coarse(Update)
	if coarse[len(coarse)-1] != 8 { // both in same coarse bucket
		t.Errorf("coarse = %v", coarse[len(coarse)-2:])
	}
}

func TestTrackerRingWraps(t *testing.T) {
	c := newFakeClock()
	tr := testTracker(c)
	tr.Record(Update, 100)
	// Advance past the entire fine window: old counts must be evicted.
	c.tick(3 * time.Second)
	fine := tr.Fine(Update)
	for i, v := range fine {
		if v != 0 {
			t.Errorf("bucket %d = %f after wrap", i, v)
		}
	}
}

func TestRecentRate(t *testing.T) {
	c := newFakeClock()
	tr := testTracker(c)
	for i := 0; i < 10; i++ {
		tr.Record(PointRead, 10)
		c.tick(100 * time.Millisecond)
	}
	rate := tr.RecentRate(PointRead, 10)
	if rate < 80 || rate > 120 { // 10 per 100ms = 100/s
		t.Errorf("rate = %f", rate)
	}
}

func periodicSeries(n, period int, hi, lo float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		if (i/period)%2 == 0 {
			s[i] = hi
		} else {
			s[i] = lo
		}
	}
	return s
}

func TestSPARLearnsPeriodicity(t *testing.T) {
	// Square wave with period 10 (5 hi, 5 lo pattern repeating every 10).
	series := make([]float64, 200)
	for i := range series {
		if i%10 < 5 {
			series[i] = 100
		} else {
			series[i] = 2
		}
	}
	s := NewSPAR(10, 3, 2)
	s.Fit(series)
	// Next index is 200; 200 % 10 = 0 -> expect high.
	got := s.Predict(series, 1)
	if math.Abs(got-100) > 25 {
		t.Errorf("SPAR predict = %f, want ~100", got)
	}
	// Five steps later (index 205 -> low phase).
	got = s.Predict(series, 6)
	if got > 60 {
		t.Errorf("SPAR predict ahead=6 = %f, want low", got)
	}
}

func TestDetectPeriod(t *testing.T) {
	series := periodicSeries(120, 6, 50, 1) // square wave, full cycle = 12
	p := DetectPeriod(series, 40)
	if p != 12 && p != 24 && p != 36 {
		t.Errorf("period = %d, want multiple of 12", p)
	}
	flat := make([]float64, 50)
	if p := DetectPeriod(flat, 20); p != 0 {
		t.Errorf("flat period = %d", p)
	}
	if p := DetectPeriod([]float64{1, 2}, 10); p != 0 {
		t.Errorf("short period = %d", p)
	}
}

func TestHybridTracksLevel(t *testing.T) {
	h := NewHybrid(6, 1)
	series := make([]float64, 100)
	for i := range series {
		series[i] = 40 // constant demand
	}
	h.Fit(series)
	got := h.Predict(series, 1)
	if math.Abs(got-40) > 10 {
		t.Errorf("constant series predict = %f", got)
	}
}

func TestHybridTrend(t *testing.T) {
	h := NewHybrid(6, 2)
	series := make([]float64, 80)
	for i := range series {
		series[i] = float64(i) // rising demand
	}
	h.Fit(series)
	got := h.Predict(series, 5)
	if got < 60 {
		t.Errorf("trend predict = %f, want >= 60", got)
	}
}

func TestHybridHoliday(t *testing.T) {
	h := NewHybrid(4, 3)
	series := make([]float64, 40)
	for i := range series {
		series[i] = 10
	}
	h.Fit(series)
	base := h.Predict(series, 1)
	h.Holidays[len(series)] = 3.0 // the bucket 1 step ahead
	boosted := h.Predict(series, 1)
	if boosted < base*2 {
		t.Errorf("holiday multiplier ineffective: %f vs %f", boosted, base)
	}
}

func TestHybridUnfitted(t *testing.T) {
	h := NewHybrid(4, 4)
	got := h.Predict([]float64{5, 5, 5}, 1)
	if got != 5 {
		t.Errorf("unfitted predict = %f, want last value", got)
	}
	if h.Predict(nil, 1) != 0 {
		t.Error("empty series should predict 0")
	}
}

func TestArrivalEstimate(t *testing.T) {
	p, d := ArrivalEstimate(0)
	if p != 0 || !math.IsInf(d, 1) {
		t.Errorf("zero rate: %f %f", p, d)
	}
	p, d = ArrivalEstimate(2)
	if p < 0.8 || p > 0.9 {
		t.Errorf("prob = %f", p)
	}
	if d != 0.5 {
		t.Errorf("delay = %f", d)
	}
}
