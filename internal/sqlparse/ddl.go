package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"proteus/internal/schema"
	"proteus/internal/types"
)

// CreateTable is a parsed CREATE TABLE statement.
type CreateTable struct {
	Name string
	Cols []schema.Column
	// MaxRows comes from the optional MAXROWS <n> suffix (0 = default).
	MaxRows int64
	// Partitions comes from the optional PARTITIONS <n> suffix.
	Partitions int
}

var kindNames = map[string]types.Kind{
	"BIGINT": types.KindInt64, "INT": types.KindInt64, "INTEGER": types.KindInt64,
	"DOUBLE": types.KindFloat64, "FLOAT": types.KindFloat64, "DECIMAL": types.KindFloat64,
	"VARCHAR": types.KindString, "TEXT": types.KindString, "STRING": types.KindString,
	"TIMESTAMP": types.KindTime, "BOOLEAN": types.KindBool, "BOOL": types.KindBool,
}

// ParseCreate parses:
//
//	CREATE TABLE name (col KIND, ...) [MAXROWS n] [PARTITIONS n]
func ParseCreate(sql string) (*CreateTable, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		kindName, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, ok := kindNames[strings.ToUpper(kindName)]
		if !ok {
			return nil, fmt.Errorf("sql: unknown type %q", kindName)
		}
		// Optional (n) size suffix, recorded as the average size hint.
		var avg float64
		if p.cur().kind == tokSymbol && p.cur().text == "(" {
			p.advance()
			n := p.cur()
			if n.kind != tokNumber {
				return nil, fmt.Errorf("sql: expected size, got %q", n.text)
			}
			avg, _ = strconv.ParseFloat(n.text, 64)
			p.advance()
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		ct.Cols = append(ct.Cols, schema.Column{Name: col, Kind: kind, AvgSize: avg})
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	for p.cur().kind == tokIdent {
		switch {
		case p.peekKeyword("MAXROWS"):
			p.advance()
			n := p.cur()
			if n.kind != tokNumber {
				return nil, fmt.Errorf("sql: MAXROWS needs a number")
			}
			ct.MaxRows, _ = strconv.ParseInt(n.text, 10, 64)
			p.advance()
		case p.peekKeyword("PARTITIONS"):
			p.advance()
			n := p.cur()
			if n.kind != tokNumber {
				return nil, fmt.Errorf("sql: PARTITIONS needs a number")
			}
			v, _ := strconv.ParseInt(n.text, 10, 64)
			ct.Partitions = int(v)
			p.advance()
		default:
			return nil, fmt.Errorf("sql: unexpected %q", p.cur().text)
		}
	}
	return ct, nil
}

// IsCreate reports whether the statement starts with CREATE.
func IsCreate(sql string) bool {
	trimmed := strings.TrimSpace(sql)
	return len(trimmed) >= 6 && strings.EqualFold(trimmed[:6], "CREATE")
}
