package sqlparse

import (
	"testing"

	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

func catalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.Create("orders", []schema.Column{
		{Name: "order_id", Kind: types.KindInt64},
		{Name: "item_id", Kind: types.KindInt64},
		{Name: "amount", Kind: types.KindFloat64},
		{Name: "note", Kind: types.KindString},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Create("item", []schema.Column{
		{Name: "i_id", Kind: types.KindInt64},
		{Name: "i_price", Kind: types.KindFloat64},
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func parseQuery(t *testing.T, sql string) *query.Query {
	t.Helper()
	req, err := Parse(catalog(t), sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if req.Query == nil {
		t.Fatalf("%s: not a query", sql)
	}
	return req.Query
}

func TestSelectScanAggregate(t *testing.T) {
	q := parseQuery(t, "SELECT SUM(amount), COUNT(*) FROM orders WHERE amount >= 10 AND note = 'x'")
	agg, ok := q.Root.(*query.AggNode)
	if !ok {
		t.Fatalf("root = %T", q.Root)
	}
	if len(agg.Aggs) != 2 || agg.Aggs[0].Func != exec.AggSum || agg.Aggs[1].Func != exec.AggCount {
		t.Errorf("aggs = %v", agg.Aggs)
	}
	scan := agg.Child.(*query.ScanNode)
	if len(scan.Pred) != 2 {
		t.Fatalf("pred = %v", scan.Pred)
	}
	if scan.Pred[0].Op != storage.CmpGe || scan.Pred[0].Val.Float() != 10 {
		t.Errorf("pred[0] = %+v", scan.Pred[0])
	}
	if scan.Pred[1].Val.Str() != "x" {
		t.Errorf("pred[1] = %+v", scan.Pred[1])
	}
}

func TestSelectGroupBy(t *testing.T) {
	q := parseQuery(t, "SELECT item_id, AVG(amount) FROM orders GROUP BY item_id")
	agg := q.Root.(*query.AggNode)
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 1 || agg.Aggs[0].Func != exec.AggAvg {
		t.Errorf("agg = %+v", agg)
	}
}

func TestSelectJoin(t *testing.T) {
	q := parseQuery(t, "SELECT SUM(amount) FROM orders JOIN item ON item_id = i_id WHERE i_price < 50")
	agg := q.Root.(*query.AggNode)
	join, ok := agg.Child.(*query.JoinNode)
	if !ok {
		t.Fatalf("child = %T", agg.Child)
	}
	ls := join.Left.(*query.ScanNode)
	rs := join.Right.(*query.ScanNode)
	if ls.Table != 0 || rs.Table != 1 {
		t.Errorf("tables = %d, %d", ls.Table, rs.Table)
	}
	// Predicate on i_price lands on the item scan.
	if len(rs.Pred) != 1 || len(ls.Pred) != 0 {
		t.Errorf("pred split: left=%v right=%v", ls.Pred, rs.Pred)
	}
	// Join keys index each side's output columns.
	if join.LeftKeyCol >= len(ls.Cols) || join.RightKeyCol >= len(rs.Cols) {
		t.Errorf("keys out of range: %d/%d", join.LeftKeyCol, join.RightKeyCol)
	}
}

func TestInsert(t *testing.T) {
	cat := catalog(t)
	req, err := Parse(cat, "INSERT INTO orders VALUES (42, 7, 3, 19.5, 'hello world')")
	if err != nil {
		t.Fatal(err)
	}
	op := req.Txn.Ops[0]
	if op.Kind != query.OpInsert || op.Row != 42 || len(op.Vals) != 4 {
		t.Fatalf("op = %+v", op)
	}
	if op.Vals[2].Float() != 19.5 || op.Vals[3].Str() != "hello world" {
		t.Errorf("vals = %v", op.Vals)
	}
}

func TestUpdateDelete(t *testing.T) {
	cat := catalog(t)
	req, err := Parse(cat, "UPDATE orders SET amount = 5.5, note = 'paid' WHERE id = 9")
	if err != nil {
		t.Fatal(err)
	}
	op := req.Txn.Ops[0]
	if op.Kind != query.OpUpdate || op.Row != 9 || len(op.Cols) != 2 {
		t.Fatalf("op = %+v", op)
	}
	req, err = Parse(cat, "DELETE FROM orders WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if op := req.Txn.Ops[0]; op.Kind != query.OpDelete || op.Row != 3 {
		t.Fatalf("op = %+v", op)
	}
}

func TestParseErrors(t *testing.T) {
	cat := catalog(t)
	bad := []string{
		"",
		"DROP TABLE orders",
		"SELECT FROM orders",
		"SELECT amount FROM nope",
		"SELECT missing FROM orders",
		"SELECT amount FROM orders", // bare column without GROUP BY is fine? no agg -> plain scan
		"INSERT INTO orders VALUES (1, 2)",
		"UPDATE orders SET nope = 1 WHERE id = 1",
		"UPDATE orders SET amount = 1 WHERE order_id = 1",
		"SELECT SUM(amount FROM orders",
		"SELECT SUM(*) FROM orders",
		"SELECT COUNT(*) FROM orders WHERE note = 'unterminated",
	}
	for _, sql := range bad {
		if sql == "SELECT amount FROM orders" {
			// Plain projections parse fine.
			if _, err := Parse(cat, sql); err != nil {
				t.Errorf("%q should parse: %v", sql, err)
			}
			continue
		}
		if _, err := Parse(cat, sql); err == nil {
			t.Errorf("%q parsed without error", sql)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	cat := catalog(t)
	if _, err := Parse(cat, "select count(*) from orders where amount > 1"); err != nil {
		t.Errorf("lowercase failed: %v", err)
	}
}

func TestQualifiedColumns(t *testing.T) {
	q := parseQuery(t, "SELECT COUNT(*) FROM orders JOIN item ON orders.item_id = item.i_id")
	agg := q.Root.(*query.AggNode)
	if _, ok := agg.Child.(*query.JoinNode); !ok {
		t.Fatalf("child = %T", agg.Child)
	}
}
