// Package sqlparse is the stand-in for the PostgreSQL parser/analyzer the
// paper uses to obtain query trees (§5.3.1): a hand-written lexer and
// recursive-descent parser for the SQL subset the evaluation workloads
// need — SELECT with aggregates, WHERE conjunctions, a two-table JOIN and
// GROUP BY, plus INSERT / UPDATE / DELETE keyed by primary key. Statements
// resolve against a schema.Catalog into the same query.Request values the
// programmatic API builds.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. Keywords arrive as tokIdent; the
// parser matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			j := i + 1
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(input) && input[j] != '\'' {
				sb.WriteByte(input[j])
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sql: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case strings.ContainsRune("(),*=.<>", rune(c)):
			// Two-character operators first.
			if i+1 < len(input) {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					toks = append(toks, token{tokSymbol, two, i})
					i += 2
					continue
				}
			}
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokSymbol, "!=", i})
				i += 2
				continue
			}
			return nil, fmt.Errorf("sql: unexpected '!' at %d", i)
		case c == ';':
			i++ // statement terminator, ignored
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}
