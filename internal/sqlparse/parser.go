package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Parse converts one SQL statement into a query.Request, resolving table
// and column names against the catalog. The primary key convention: every
// table's row id is addressed through the pseudo-column "id" in INSERT /
// UPDATE / DELETE / point-SELECT WHERE clauses.
func Parse(cat *schema.Catalog, sql string) (query.Request, error) {
	toks, err := lex(sql)
	if err != nil {
		return query.Request{}, err
	}
	p := &parser{cat: cat, toks: toks}
	switch {
	case p.peekKeyword("SELECT"):
		q, err := p.parseSelect()
		if err != nil {
			return query.Request{}, err
		}
		return query.Request{Query: q}, nil
	case p.peekKeyword("INSERT"):
		op, err := p.parseInsert()
		if err != nil {
			return query.Request{}, err
		}
		return query.Request{Txn: &query.Txn{Ops: []query.Op{op}}}, nil
	case p.peekKeyword("UPDATE"):
		op, err := p.parseUpdate()
		if err != nil {
			return query.Request{}, err
		}
		return query.Request{Txn: &query.Txn{Ops: []query.Op{op}}}, nil
	case p.peekKeyword("DELETE"):
		op, err := p.parseDelete()
		if err != nil {
			return query.Request{}, err
		}
		return query.Request{Txn: &query.Txn{Ops: []query.Op{op}}}, nil
	}
	return query.Request{}, fmt.Errorf("sql: expected SELECT, INSERT, UPDATE or DELETE")
}

type parser struct {
	cat  *schema.Catalog
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) advance()   { p.i++ }
func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peekKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %q", kw, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.cur()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("sql: expected %q, got %q", sym, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) table() (*schema.Table, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	tbl, ok := p.cat.TableByName(name)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", name)
	}
	return tbl, nil
}

// literal parses a constant of the column's kind.
func (p *parser) literal(kind types.Kind) (types.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if kind == types.KindFloat64 {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return types.Null(), err
			}
			return types.NewFloat64(f), nil
		}
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return types.Null(), err
			}
			return types.NewFloat64(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return types.Null(), err
		}
		if kind == types.KindInt64 || kind == types.KindNull {
			return types.NewInt64(i), nil
		}
		return types.Parse(kind, t.text)
	case tokString:
		p.advance()
		if kind == types.KindString || kind == types.KindNull {
			return types.NewString(t.text), nil
		}
		return types.Parse(kind, t.text)
	}
	return types.Null(), fmt.Errorf("sql: expected literal, got %q", t.text)
}

// selectItem is one projection entry: a column or an aggregate over one.
type selectItem struct {
	agg    exec.AggFunc
	hasAgg bool
	col    string // empty for COUNT(*)
}

func (p *parser) parseSelectItem() (selectItem, error) {
	name, err := p.ident()
	if err != nil {
		return selectItem{}, err
	}
	upper := strings.ToUpper(name)
	aggs := map[string]exec.AggFunc{"SUM": exec.AggSum, "COUNT": exec.AggCount,
		"MIN": exec.AggMin, "MAX": exec.AggMax, "AVG": exec.AggAvg}
	if fn, isAgg := aggs[upper]; isAgg && p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.advance()
		item := selectItem{agg: fn, hasAgg: true}
		if p.cur().kind == tokSymbol && p.cur().text == "*" {
			if fn != exec.AggCount {
				return item, fmt.Errorf("sql: %s(*) not supported", upper)
			}
			p.advance()
		} else {
			col, err := p.qualifiedCol()
			if err != nil {
				return item, err
			}
			item.col = col
		}
		if err := p.expectSymbol(")"); err != nil {
			return item, err
		}
		return item, nil
	}
	// Possibly qualified column t.c.
	if p.cur().kind == tokSymbol && p.cur().text == "." {
		p.advance()
		col, err := p.ident()
		if err != nil {
			return selectItem{}, err
		}
		return selectItem{col: col}, nil
	}
	return selectItem{col: name}, nil
}

// qualifiedCol parses col or table.col, returning just the column name
// (tables are disambiguated by lookup order: left, then right).
func (p *parser) qualifiedCol() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.cur().kind == tokSymbol && p.cur().text == "." {
		p.advance()
		return p.ident()
	}
	return name, nil
}

var cmpOps = map[string]storage.CmpOp{
	"=": storage.CmpEq, "<>": storage.CmpNe, "!=": storage.CmpNe,
	"<": storage.CmpLt, "<=": storage.CmpLe, ">": storage.CmpGt, ">=": storage.CmpGe,
}

// parseSelect handles:
//
//	SELECT items FROM t [JOIN u ON t.a = u.b] [WHERE conds] [GROUP BY col]
func (p *parser) parseSelect() (*query.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var items []selectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	left, err := p.table()
	if err != nil {
		return nil, err
	}
	var right *schema.Table
	var lJoinCol, rJoinCol string
	if p.peekKeyword("JOIN") {
		p.advance()
		right, err = p.table()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		lJoinCol, err = p.qualifiedCol()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		rJoinCol, err = p.qualifiedCol()
		if err != nil {
			return nil, err
		}
		// Normalize: left join col must belong to the left table.
		if _, inLeft := left.ColumnID(lJoinCol); !inLeft {
			lJoinCol, rJoinCol = rJoinCol, lJoinCol
		}
	}

	// WHERE conjuncts split per table.
	lPred, rPred := storage.Pred{}, storage.Pred{}
	if p.peekKeyword("WHERE") {
		p.advance()
		for {
			col, err := p.qualifiedCol()
			if err != nil {
				return nil, err
			}
			opTok := p.cur()
			op, ok := cmpOps[opTok.text]
			if opTok.kind != tokSymbol || !ok {
				return nil, fmt.Errorf("sql: expected comparison, got %q", opTok.text)
			}
			p.advance()
			tbl, cid, kind, err := p.resolveCol(col, left, right)
			if err != nil {
				return nil, err
			}
			v, err := p.literal(kind)
			if err != nil {
				return nil, err
			}
			cond := storage.Cond{Col: cid, Op: op, Val: v}
			if right != nil && tbl == right {
				rPred = append(rPred, cond)
			} else {
				lPred = append(lPred, cond)
			}
			if p.peekKeyword("AND") {
				p.advance()
				continue
			}
			break
		}
	}

	var groupCol string
	if p.peekKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		groupCol, err = p.qualifiedCol()
		if err != nil {
			return nil, err
		}
	}
	return p.buildQuery(items, left, right, lJoinCol, rJoinCol, lPred, rPred, groupCol)
}

// resolveCol locates a column in the left (preferred) or right table.
func (p *parser) resolveCol(name string, left, right *schema.Table) (*schema.Table, schema.ColID, types.Kind, error) {
	if cid, ok := left.ColumnID(name); ok {
		return left, cid, left.Columns[cid].Kind, nil
	}
	if right != nil {
		if cid, ok := right.ColumnID(name); ok {
			return right, cid, right.Columns[cid].Kind, nil
		}
	}
	return nil, 0, types.KindNull, fmt.Errorf("sql: unknown column %q", name)
}

// buildQuery assembles the logical tree: scans (with pushed predicates),
// the optional join, and the aggregate/group-by layer.
func (p *parser) buildQuery(items []selectItem, left, right *schema.Table,
	lJoin, rJoin string, lPred, rPred storage.Pred, groupCol string) (*query.Query, error) {

	// Output columns needed from each side (projection + join keys + group).
	type colRef struct {
		tbl *schema.Table
		cid schema.ColID
	}
	var scanCols []colRef
	addCol := func(name string) (int, error) {
		tbl, cid, _, err := p.resolveCol(name, left, right)
		if err != nil {
			return 0, err
		}
		for i, c := range scanCols {
			if c.tbl == tbl && c.cid == cid {
				return i, nil
			}
		}
		scanCols = append(scanCols, colRef{tbl, cid})
		return len(scanCols) - 1, nil
	}

	itemPos := make([]int, len(items))
	for i, it := range items {
		if it.col == "" {
			itemPos[i] = -1 // COUNT(*)
			continue
		}
		pos, err := addCol(it.col)
		if err != nil {
			return nil, err
		}
		itemPos[i] = pos
	}
	groupPos := -1
	if groupCol != "" {
		pos, err := addCol(groupCol)
		if err != nil {
			return nil, err
		}
		groupPos = pos
	}
	lKeyPos, rKeyPos := -1, -1
	if right != nil {
		var err error
		if lKeyPos, err = addCol(lJoin); err != nil {
			return nil, err
		}
		if rKeyPos, err = addCol(rJoin); err != nil {
			return nil, err
		}
	}

	// Split scanCols per table, preserving positions: the join output is
	// left cols followed by right cols.
	var lCols, rCols []schema.ColID
	finalPos := make([]int, len(scanCols))
	for i, c := range scanCols {
		if c.tbl == left {
			finalPos[i] = len(lCols)
			lCols = append(lCols, c.cid)
		}
	}
	for i, c := range scanCols {
		if right != nil && c.tbl == right {
			finalPos[i] = -(len(rCols) + 1) // right side, resolved below
			rCols = append(rCols, c.cid)
		}
	}
	for i := range finalPos {
		if finalPos[i] < 0 {
			finalPos[i] = len(lCols) + (-finalPos[i] - 1)
		}
	}

	var root query.Node = &query.ScanNode{Table: left.ID, Cols: lCols, Pred: lPred}
	if right != nil {
		root = &query.JoinNode{
			Left:        root,
			Right:       &query.ScanNode{Table: right.ID, Cols: rCols, Pred: rPred},
			LeftKeyCol:  finalPos[lKeyPos],
			RightKeyCol: finalPos[rKeyPos] - len(lCols),
		}
	}

	// Aggregation layer.
	hasAgg := false
	for _, it := range items {
		if it.hasAgg {
			hasAgg = true
		}
	}
	if hasAgg || groupCol != "" {
		var aggs []exec.AggSpec
		for i, it := range items {
			if !it.hasAgg {
				if groupCol == "" || items[i].col != groupCol {
					return nil, fmt.Errorf("sql: non-aggregated column %q requires GROUP BY", it.col)
				}
				continue
			}
			spec := exec.AggSpec{Func: it.agg}
			if it.col != "" {
				spec.Col = finalPos[itemPos[i]]
			}
			aggs = append(aggs, spec)
		}
		var groupBy []int
		if groupCol != "" {
			groupBy = []int{finalPos[groupPos]}
		}
		root = &query.AggNode{Child: root, GroupBy: groupBy, Aggs: aggs}
	}
	return &query.Query{Root: root}, nil
}

// parseInsert handles INSERT INTO t VALUES (id, v1, v2, ...): the first
// value is the row id, followed by one value per column.
func (p *parser) parseInsert() (query.Op, error) {
	var op query.Op
	if err := p.expectKeyword("INSERT"); err != nil {
		return op, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return op, err
	}
	tbl, err := p.table()
	if err != nil {
		return op, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return op, err
	}
	if err := p.expectSymbol("("); err != nil {
		return op, err
	}
	idVal, err := p.literal(types.KindInt64)
	if err != nil {
		return op, err
	}
	vals := make([]types.Value, 0, tbl.NumColumns())
	for c := 0; c < tbl.NumColumns(); c++ {
		if err := p.expectSymbol(","); err != nil {
			return op, fmt.Errorf("sql: table %s needs %d values: %w", tbl.Name, tbl.NumColumns(), err)
		}
		v, err := p.literal(tbl.Columns[c].Kind)
		if err != nil {
			return op, err
		}
		vals = append(vals, v)
	}
	if err := p.expectSymbol(")"); err != nil {
		return op, err
	}
	return query.Op{Kind: query.OpInsert, Table: tbl.ID, Row: schema.RowID(idVal.Int()), Vals: vals}, nil
}

// parseKeyedWhere parses WHERE id = <n>.
func (p *parser) parseKeyedWhere() (schema.RowID, error) {
	if err := p.expectKeyword("WHERE"); err != nil {
		return 0, err
	}
	name, err := p.ident()
	if err != nil {
		return 0, err
	}
	if !strings.EqualFold(name, "id") {
		return 0, fmt.Errorf("sql: keyed statements address rows via 'id', got %q", name)
	}
	if err := p.expectSymbol("="); err != nil {
		return 0, err
	}
	v, err := p.literal(types.KindInt64)
	if err != nil {
		return 0, err
	}
	return schema.RowID(v.Int()), nil
}

// parseUpdate handles UPDATE t SET col = v [, col = v ...] WHERE id = n.
func (p *parser) parseUpdate() (query.Op, error) {
	var op query.Op
	if err := p.expectKeyword("UPDATE"); err != nil {
		return op, err
	}
	tbl, err := p.table()
	if err != nil {
		return op, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return op, err
	}
	var cols []schema.ColID
	var vals []types.Value
	for {
		name, err := p.ident()
		if err != nil {
			return op, err
		}
		cid, ok := tbl.ColumnID(name)
		if !ok {
			return op, fmt.Errorf("sql: unknown column %q", name)
		}
		if err := p.expectSymbol("="); err != nil {
			return op, err
		}
		v, err := p.literal(tbl.Columns[cid].Kind)
		if err != nil {
			return op, err
		}
		cols = append(cols, cid)
		vals = append(vals, v)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	row, err := p.parseKeyedWhere()
	if err != nil {
		return op, err
	}
	return query.Op{Kind: query.OpUpdate, Table: tbl.ID, Row: row, Cols: cols, Vals: vals}, nil
}

// parseDelete handles DELETE FROM t WHERE id = n.
func (p *parser) parseDelete() (query.Op, error) {
	var op query.Op
	if err := p.expectKeyword("DELETE"); err != nil {
		return op, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return op, err
	}
	tbl, err := p.table()
	if err != nil {
		return op, err
	}
	row, err := p.parseKeyedWhere()
	if err != nil {
		return op, err
	}
	return query.Op{Kind: query.OpDelete, Table: tbl.ID, Row: row}, nil
}
