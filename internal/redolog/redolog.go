// Package redolog provides per-partition, append-only redo logs with
// subscriber offsets — the substrate the paper obtains from Apache Kafka
// (§4.2). Masters append update records on commit; replicas poll from
// their last offset and apply updates lazily. The logs also provide fault
// tolerance: sites recover partitions by replaying from a snapshot offset
// (§4.3).
package redolog

import (
	"fmt"
	"sync"

	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/types"
)

// OpKind is the kind of one logged mutation.
type OpKind uint8

const (
	// OpInsert logs a row insert.
	OpInsert OpKind = iota
	// OpUpdate logs a partial-row update.
	OpUpdate
	// OpDelete logs a row delete.
	OpDelete
)

// Entry is one mutation within a record.
type Entry struct {
	Op   OpKind
	Row  schema.RowID
	Cols []schema.ColID // partition-local; nil for inserts (full row)
	Vals []types.Value
}

// Record is the unit appended on transaction commit: every mutation one
// transaction applied to one partition, stamped with the partition version
// the commit installed.
type Record struct {
	Partition partition.ID
	Version   uint64
	Entries   []Entry
	// Deps carries the partition versions co-written by the same
	// transaction, letting subscribers enforce consistent snapshots.
	Deps map[partition.ID]uint64
}

// Broker is an in-process log broker: one topic per partition.
// All methods are safe for concurrent use.
type Broker struct {
	mu     sync.RWMutex
	topics map[partition.ID]*topic
}

type topic struct {
	mu      sync.RWMutex
	records []Record
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: make(map[partition.ID]*topic)}
}

// CreateTopic ensures a log exists for the partition.
func (b *Broker) CreateTopic(pid partition.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[pid]; !ok {
		b.topics[pid] = &topic{}
	}
}

// DeleteTopic removes a partition's log (after the partition is dropped).
func (b *Broker) DeleteTopic(pid partition.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.topics, pid)
}

func (b *Broker) topic(pid partition.ID) *topic {
	b.mu.RLock()
	t := b.topics[pid]
	b.mu.RUnlock()
	if t != nil {
		return t
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t = b.topics[pid]; t == nil {
		t = &topic{}
		b.topics[pid] = t
	}
	return t
}

// Append writes a record to the partition's log and returns its offset.
func (b *Broker) Append(rec Record) int64 {
	t := b.topic(rec.Partition)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.records = append(t.records, rec)
	return int64(len(t.records) - 1)
}

// Poll returns up to max records starting at offset from. It returns the
// records and the next offset to poll from.
func (b *Broker) Poll(pid partition.ID, from int64, max int) ([]Record, int64) {
	t := b.topic(pid)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if from >= int64(len(t.records)) {
		return nil, from
	}
	end := from + int64(max)
	if max <= 0 || end > int64(len(t.records)) {
		end = int64(len(t.records))
	}
	out := make([]Record, end-from)
	copy(out, t.records[from:end])
	return out, end
}

// EndOffset reports the offset one past the last record.
func (b *Broker) EndOffset(pid partition.ID) int64 {
	t := b.topic(pid)
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(len(t.records))
}

// Truncate discards records before offset (checkpointing), keeping offsets
// stable by retaining a base index.
func (b *Broker) Truncate(pid partition.ID, before int64) error {
	// Offsets are indexes into the record slice; truncation would shift
	// them. Real log brokers keep a base offset; for the scale of this
	// simulation we simply disallow truncating the active range.
	t := b.topic(pid)
	t.mu.Lock()
	defer t.mu.Unlock()
	if before != 0 {
		return fmt.Errorf("redolog: truncation of active topics not supported (offset %d)", before)
	}
	return nil
}

// Apply replays a record's entries into a partition replica. Used by the
// replication layer and by crash recovery.
func Apply(p *partition.Partition, rec Record) error {
	for _, e := range rec.Entries {
		var err error
		switch e.Op {
		case OpInsert:
			err = p.Insert(schema.Row{ID: e.Row, Vals: e.Vals}, rec.Version)
		case OpUpdate:
			err = p.Update(e.Row, e.Cols, e.Vals, rec.Version)
		case OpDelete:
			err = p.Delete(e.Row, rec.Version)
		}
		if err != nil {
			return fmt.Errorf("redolog: apply %v to partition %d: %w", e.Op, rec.Partition, err)
		}
	}
	p.SetVersion(rec.Version)
	return nil
}
