// Package redolog provides per-partition, append-only redo logs with
// subscriber offsets — the substrate the paper obtains from Apache Kafka
// (§4.2). Masters append update records on commit; replicas poll from
// their last offset and apply updates lazily. The logs also provide fault
// tolerance: sites recover partitions by replaying from a snapshot offset
// (§4.3).
package redolog

import (
	"fmt"
	"sync"

	"proteus/internal/obs"
	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/types"
)

// OpKind is the kind of one logged mutation.
type OpKind uint8

const (
	// OpInsert logs a row insert.
	OpInsert OpKind = iota
	// OpUpdate logs a partial-row update.
	OpUpdate
	// OpDelete logs a row delete.
	OpDelete
)

// Entry is one mutation within a record.
type Entry struct {
	Op   OpKind
	Row  schema.RowID
	Cols []schema.ColID // partition-local; nil for inserts (full row)
	Vals []types.Value
}

// Record is the unit appended on transaction commit: every mutation one
// transaction applied to one partition, stamped with the partition version
// the commit installed.
type Record struct {
	Partition partition.ID
	Version   uint64
	Entries   []Entry
	// Deps carries the partition versions co-written by the same
	// transaction, letting subscribers enforce consistent snapshots.
	Deps map[partition.ID]uint64
}

// Checkpoint is a durable snapshot of one partition's full state held by
// the broker alongside the log — the stand-in for the paper's snapshot
// store that bounds recovery replay (§4.3). Offset is the log position the
// snapshot covers: recovery loads Rows at Version and replays from Offset.
// Rows is shared, not copied; treat it as read-only.
type Checkpoint struct {
	Rows    []schema.Row
	Version uint64
	Offset  int64
}

// Broker is an in-process log broker: one topic per partition.
// All methods are safe for concurrent use.
type Broker struct {
	mu     sync.RWMutex
	topics map[partition.ID]*topic

	// Optional observability instruments (SetObs).
	obsAppends   *obs.Counter
	obsPolls     *obs.Counter
	obsPolled    *obs.Counter
	obsTruncated *obs.Counter
	obsCkpts     *obs.Counter
	obsBacklog   *obs.Gauge // retained records across all topics
}

// topic is one partition's log. base is the offset of records[0]: offsets
// are stable across truncation, as with a real log broker's log-start
// offset.
type topic struct {
	mu      sync.RWMutex
	base    int64
	records []Record
	ckpt    *Checkpoint
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: make(map[partition.ID]*topic)}
}

// SetObs installs broker instruments: redolog.appends, redolog.polls,
// redolog.polled_records, redolog.truncated_records and the
// redolog.backlog gauge (retained records across topics).
func (b *Broker) SetObs(reg *obs.Registry) {
	b.obsAppends = reg.Counter("redolog.appends")
	b.obsPolls = reg.Counter("redolog.polls")
	b.obsPolled = reg.Counter("redolog.polled_records")
	b.obsTruncated = reg.Counter("redolog.truncated_records")
	b.obsCkpts = reg.Counter("redolog.checkpoints")
	b.obsBacklog = reg.Gauge("redolog.backlog")
}

// CreateTopic ensures a log exists for the partition.
func (b *Broker) CreateTopic(pid partition.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[pid]; !ok {
		b.topics[pid] = &topic{}
	}
}

// DeleteTopic removes a partition's log (after the partition is dropped).
func (b *Broker) DeleteTopic(pid partition.ID) {
	b.mu.Lock()
	t := b.topics[pid]
	delete(b.topics, pid)
	b.mu.Unlock()
	if t != nil && b.obsBacklog != nil {
		t.mu.RLock()
		b.obsBacklog.Add(-int64(len(t.records)))
		t.mu.RUnlock()
	}
}

// Topics snapshots the partition IDs with a log.
func (b *Broker) Topics() []partition.ID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]partition.ID, 0, len(b.topics))
	for pid := range b.topics {
		out = append(out, pid)
	}
	return out
}

func (b *Broker) topic(pid partition.ID) *topic {
	b.mu.RLock()
	t := b.topics[pid]
	b.mu.RUnlock()
	if t != nil {
		return t
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t = b.topics[pid]; t == nil {
		t = &topic{}
		b.topics[pid] = t
	}
	return t
}

// Append writes a record to the partition's log and returns its offset.
func (b *Broker) Append(rec Record) int64 {
	t := b.topic(rec.Partition)
	t.mu.Lock()
	t.records = append(t.records, rec)
	off := t.base + int64(len(t.records)) - 1
	t.mu.Unlock()
	if b.obsAppends != nil {
		b.obsAppends.Inc()
		b.obsBacklog.Add(1)
	}
	return off
}

// AppendBatch appends a group-commit flush in one pass. Records for the
// same partition must already be in version order; consecutive records for
// one partition share a single topic-lock acquisition, and the instruments
// (append counter, backlog gauge) are updated once per call instead of once
// per record. Callers that interleave partitions should sort the batch
// (stably, to preserve per-partition order) so each topic is locked once.
func (b *Broker) AppendBatch(recs []Record) {
	if len(recs) == 0 {
		return
	}
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].Partition == recs[i].Partition {
			j++
		}
		t := b.topic(recs[i].Partition)
		t.mu.Lock()
		t.records = append(t.records, recs[i:j]...)
		t.mu.Unlock()
		i = j
	}
	if b.obsAppends != nil {
		b.obsAppends.Add(int64(len(recs)))
		b.obsBacklog.Add(int64(len(recs)))
	}
}

// Poll returns up to max records starting at offset from. It returns the
// records and the next offset to poll from. Offsets below the truncated
// base resume from the oldest retained record (a log broker's
// out-of-range reset to the log-start offset).
func (b *Broker) Poll(pid partition.ID, from int64, max int) ([]Record, int64) {
	t := b.topic(pid)
	t.mu.RLock()
	if from < t.base {
		from = t.base
	}
	end := t.base + int64(len(t.records))
	if from >= end {
		t.mu.RUnlock()
		if b.obsPolls != nil {
			b.obsPolls.Inc()
		}
		return nil, from
	}
	if max > 0 && from+int64(max) < end {
		end = from + int64(max)
	}
	out := make([]Record, end-from)
	copy(out, t.records[from-t.base:end-t.base])
	t.mu.RUnlock()
	if b.obsPolls != nil {
		b.obsPolls.Inc()
		b.obsPolled.Add(int64(len(out)))
	}
	return out, end
}

// EndOffset reports the offset one past the last record.
func (b *Broker) EndOffset(pid partition.ID) int64 {
	t := b.topic(pid)
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.base + int64(len(t.records))
}

// BaseOffset reports the oldest retained offset (the log-start offset).
func (b *Broker) BaseOffset(pid partition.ID) int64 {
	t := b.topic(pid)
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.base
}

// Retained reports how many records the topic currently holds.
func (b *Broker) Retained(pid partition.ID) int64 {
	t := b.topic(pid)
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(len(t.records))
}

// Truncate discards records before the offset (checkpointing). Offsets
// stay stable: the topic keeps a base offset, so later Appends and Polls
// address the same positions as before. The offset is clamped to the
// retained range; the number of records reclaimed is returned.
func (b *Broker) Truncate(pid partition.ID, before int64) int64 {
	t := b.topic(pid)
	t.mu.Lock()
	end := t.base + int64(len(t.records))
	if before > end {
		before = end
	}
	drop := before - t.base
	if drop <= 0 {
		t.mu.Unlock()
		return 0
	}
	// Copy the tail into a fresh slice so the reclaimed records' backing
	// array becomes collectable.
	rest := make([]Record, len(t.records)-int(drop))
	copy(rest, t.records[drop:])
	t.records = rest
	t.base = before
	t.mu.Unlock()
	if b.obsTruncated != nil {
		b.obsTruncated.Add(drop)
		b.obsBacklog.Add(-drop)
	}
	return drop
}

// SaveCheckpoint installs a partition snapshot, replacing any prior one.
// Callers must capture Rows/Version/Offset atomically with respect to
// commits (the engine holds the partition's exclusive lock).
func (b *Broker) SaveCheckpoint(pid partition.ID, ck Checkpoint) {
	t := b.topic(pid)
	t.mu.Lock()
	t.ckpt = &ck
	t.mu.Unlock()
	if b.obsCkpts != nil {
		b.obsCkpts.Inc()
	}
}

// Checkpoint returns the latest snapshot for the partition, if any.
func (b *Broker) Checkpoint(pid partition.ID) (Checkpoint, bool) {
	t := b.topic(pid)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.ckpt == nil {
		return Checkpoint{}, false
	}
	return *t.ckpt, true
}

// CheckpointOffset reports the offset covered by the latest snapshot
// (0 when none exists). Truncation must never pass beyond it on topics
// without one, or recovery would lose the records' effects.
func (b *Broker) CheckpointOffset(pid partition.ID) int64 {
	t := b.topic(pid)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.ckpt == nil {
		return 0
	}
	return t.ckpt.Offset
}

// ReplayInto applies every retained record from offset `from` whose
// version the partition has not yet installed — crash recovery's replay
// after loading the checkpoint. It returns the number of records applied
// and the offset replay reached (the subscription point for the rebuilt
// copy).
func (b *Broker) ReplayInto(p *partition.Partition, pid partition.ID, from int64) (int, int64, error) {
	recs, next := b.Poll(pid, from, 0)
	applied := 0
	for _, rec := range recs {
		if rec.Version <= p.Version() {
			continue
		}
		if err := Apply(p, rec); err != nil {
			return applied, next, err
		}
		applied++
	}
	return applied, next, nil
}

// Apply replays a record's entries into a partition replica. Used by the
// replication layer and by crash recovery.
func Apply(p *partition.Partition, rec Record) error {
	for _, e := range rec.Entries {
		var err error
		switch e.Op {
		case OpInsert:
			err = p.Insert(schema.Row{ID: e.Row, Vals: e.Vals}, rec.Version)
		case OpUpdate:
			err = p.Update(e.Row, e.Cols, e.Vals, rec.Version)
		case OpDelete:
			err = p.Delete(e.Row, rec.Version)
		}
		if err != nil {
			return fmt.Errorf("redolog: apply %v to partition %d: %w", e.Op, rec.Partition, err)
		}
	}
	p.SetVersion(rec.Version)
	return nil
}
