package redolog

import (
	"testing"

	"proteus/internal/disksim"
	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

func rec(pid partition.ID, ver uint64, id schema.RowID) Record {
	return Record{Partition: pid, Version: ver, Entries: []Entry{{
		Op: OpInsert, Row: id,
		Vals: []types.Value{types.NewInt64(int64(id)), types.NewString("x")},
	}}}
}

func TestAppendPoll(t *testing.T) {
	b := NewBroker()
	b.CreateTopic(1)
	if off := b.Append(rec(1, 1, 10)); off != 0 {
		t.Errorf("first offset = %d", off)
	}
	b.Append(rec(1, 2, 11))
	b.Append(rec(1, 3, 12))

	recs, next := b.Poll(1, 0, 2)
	if len(recs) != 2 || next != 2 {
		t.Fatalf("poll = %d records, next %d", len(recs), next)
	}
	if recs[0].Version != 1 || recs[1].Version != 2 {
		t.Errorf("versions: %v %v", recs[0].Version, recs[1].Version)
	}
	recs, next = b.Poll(1, next, 10)
	if len(recs) != 1 || next != 3 {
		t.Errorf("second poll = %d, next %d", len(recs), next)
	}
	recs, next = b.Poll(1, next, 10)
	if len(recs) != 0 || next != 3 {
		t.Errorf("empty poll = %d, next %d", len(recs), next)
	}
	if b.EndOffset(1) != 3 {
		t.Errorf("end = %d", b.EndOffset(1))
	}
}

func TestPollUnboundedMax(t *testing.T) {
	b := NewBroker()
	for i := uint64(1); i <= 5; i++ {
		b.Append(rec(2, i, schema.RowID(i)))
	}
	recs, _ := b.Poll(2, 0, 0) // 0 = all
	if len(recs) != 5 {
		t.Errorf("poll all = %d", len(recs))
	}
}

func TestTopicsIndependent(t *testing.T) {
	b := NewBroker()
	b.Append(rec(1, 1, 1))
	b.Append(rec(2, 1, 2))
	if b.EndOffset(1) != 1 || b.EndOffset(2) != 1 {
		t.Error("topics shared records")
	}
	b.DeleteTopic(1)
	if b.EndOffset(1) != 0 {
		t.Error("deleted topic kept records")
	}
}

func TestApplyReplaysIntoPartition(t *testing.T) {
	f := partition.Factory{Dev: disksim.New(disksim.Config{})}
	kinds := []types.Kind{types.KindInt64, types.KindString}
	bnds := partition.Bounds{Table: 0, RowStart: 0, RowEnd: 100, ColStart: 0, ColEnd: 2}
	p := partition.New(1, bnds, kinds, storage.DefaultRowLayout(), f)

	b := NewBroker()
	b.Append(rec(1, 1, 10))
	b.Append(Record{Partition: 1, Version: 2, Entries: []Entry{{
		Op: OpUpdate, Row: 10, Cols: []schema.ColID{1}, Vals: []types.Value{types.NewString("updated")},
	}}})
	b.Append(Record{Partition: 1, Version: 3, Entries: []Entry{{Op: OpDelete, Row: 10}}})
	b.Append(rec(1, 4, 20))

	recs, _ := b.Poll(1, 0, 0)
	for _, r := range recs {
		if err := Apply(p, r); err != nil {
			t.Fatal(err)
		}
	}
	if p.Version() != 4 {
		t.Errorf("version = %d", p.Version())
	}
	if _, ok := p.Get(10, []schema.ColID{0}, storage.Latest); ok {
		t.Error("deleted row visible after replay")
	}
	r, ok := p.Get(20, []schema.ColID{0, 1}, storage.Latest)
	if !ok || r.Vals[0].Int() != 20 {
		t.Errorf("replayed row: %v %v", r, ok)
	}
	// Mid-replay snapshot correctness: version 2 had the update visible.
	r2, ok := p.Get(10, []schema.ColID{1}, 2)
	if !ok || r2.Vals[0].Str() != "updated" {
		t.Errorf("snapshot 2: %v %v", r2, ok)
	}
}

func TestApplyErrorPropagates(t *testing.T) {
	f := partition.Factory{Dev: disksim.New(disksim.Config{})}
	kinds := []types.Kind{types.KindInt64, types.KindString}
	bnds := partition.Bounds{RowStart: 0, RowEnd: 100, ColStart: 0, ColEnd: 2}
	p := partition.New(1, bnds, kinds, storage.DefaultRowLayout(), f)
	// Update of a missing row fails.
	err := Apply(p, Record{Partition: 1, Version: 1, Entries: []Entry{{
		Op: OpUpdate, Row: 5, Cols: []schema.ColID{0}, Vals: []types.Value{types.NewInt64(0)},
	}}})
	if err == nil {
		t.Error("expected apply error")
	}
}

func TestTruncateKeepsOffsetsStable(t *testing.T) {
	b := NewBroker()
	for i := uint64(1); i <= 10; i++ {
		b.Append(rec(3, i, schema.RowID(i)))
	}
	if got := b.Truncate(3, 4); got != 4 {
		t.Fatalf("reclaimed = %d, want 4", got)
	}
	if b.BaseOffset(3) != 4 || b.EndOffset(3) != 10 || b.Retained(3) != 6 {
		t.Fatalf("base=%d end=%d retained=%d", b.BaseOffset(3), b.EndOffset(3), b.Retained(3))
	}

	// Polling from a retained offset sees the same records as before.
	recs, next := b.Poll(3, 6, 2)
	if len(recs) != 2 || next != 8 {
		t.Fatalf("poll = %d records, next %d", len(recs), next)
	}
	if recs[0].Version != 7 || recs[1].Version != 8 {
		t.Errorf("versions after truncate: %v %v", recs[0].Version, recs[1].Version)
	}

	// Polling below the base resumes from the log-start offset.
	recs, next = b.Poll(3, 0, 0)
	if len(recs) != 6 || next != 10 {
		t.Fatalf("below-base poll = %d records, next %d", len(recs), next)
	}
	if recs[0].Version != 5 {
		t.Errorf("oldest retained version = %v, want 5", recs[0].Version)
	}

	// Appends continue at stable offsets.
	if off := b.Append(rec(3, 11, 11)); off != 10 {
		t.Errorf("append after truncate offset = %d, want 10", off)
	}
}

func TestTruncateClampsAndNoops(t *testing.T) {
	b := NewBroker()
	for i := uint64(1); i <= 3; i++ {
		b.Append(rec(4, i, schema.RowID(i)))
	}
	if got := b.Truncate(4, 100); got != 3 {
		t.Errorf("over-end truncate reclaimed %d, want 3 (clamped)", got)
	}
	if b.BaseOffset(4) != 3 || b.EndOffset(4) != 3 {
		t.Errorf("base=%d end=%d after full truncate", b.BaseOffset(4), b.EndOffset(4))
	}
	if got := b.Truncate(4, 2); got != 0 {
		t.Errorf("below-base truncate reclaimed %d, want 0", got)
	}
	if got := b.Truncate(4, 3); got != 0 {
		t.Errorf("repeat truncate reclaimed %d, want 0", got)
	}
}

func TestAppendBatchMatchesSequentialAppend(t *testing.T) {
	// The same interleaved records, appended one by one and as a batch,
	// must produce identical per-topic logs and offsets.
	seq := NewBroker()
	bat := NewBroker()
	var recs []Record
	for i := uint64(1); i <= 6; i++ {
		recs = append(recs, rec(10, i, schema.RowID(i)))
		recs = append(recs, rec(11, i, schema.RowID(100+i)))
	}
	// Stable-sorted by partition, as the group-commit flusher submits it.
	var byPid []Record
	for _, pid := range []partition.ID{10, 11} {
		for _, r := range recs {
			if r.Partition == pid {
				byPid = append(byPid, r)
			}
		}
	}
	for _, r := range recs {
		seq.Append(r)
	}
	bat.AppendBatch(byPid)

	for _, pid := range []partition.ID{10, 11} {
		if seq.EndOffset(pid) != bat.EndOffset(pid) {
			t.Errorf("pid %d end: seq %d, batch %d", pid, seq.EndOffset(pid), bat.EndOffset(pid))
		}
		sr, _ := seq.Poll(pid, 0, 0)
		br, _ := bat.Poll(pid, 0, 0)
		if len(sr) != len(br) {
			t.Fatalf("pid %d: seq %d records, batch %d", pid, len(sr), len(br))
		}
		for i := range sr {
			if sr[i].Version != br[i].Version || sr[i].Entries[0].Row != br[i].Entries[0].Row {
				t.Errorf("pid %d record %d: seq %+v, batch %+v", pid, i, sr[i], br[i])
			}
		}
	}
}

func TestAppendBatchEmptyAndSingle(t *testing.T) {
	b := NewBroker()
	b.AppendBatch(nil)
	if b.EndOffset(1) != 0 {
		t.Errorf("empty batch advanced end to %d", b.EndOffset(1))
	}
	b.AppendBatch([]Record{rec(1, 1, 1)})
	if b.EndOffset(1) != 1 {
		t.Errorf("single batch end = %d", b.EndOffset(1))
	}
}
