package obs

import (
	"sync"
	"time"
)

// Decision is one entry in the adaptive storage advisor's decision trace
// (§5.3.2): which partition was considered, what triggered consideration,
// the chosen change and its evaluated net benefit, and how long planning
// and execution took. Executed=false entries record chosen-but-failed
// changes (the layout operator returned an error).
type Decision struct {
	Seq       int64
	At        time.Time
	Partition uint64
	Trigger   string // "oltp-plan", "olap-plan", "predictive", "capacity", "merge"
	Kind      string // candidate kind: "format", "tier", "split-h", ...
	Layout    string // resulting layout for layout changes
	Net       float64
	PlanTime  time.Duration
	ExecTime  time.Duration
	Executed  bool
	Err       string
}

// DecisionTrace is an append-only, bounded trace of advisor decisions.
// Appends assign monotonically increasing sequence numbers; the ring
// retains the most recent entries. Safe for concurrent use.
type DecisionTrace struct {
	mu    sync.Mutex
	seq   int64
	ring  []Decision
	next  int
	count int // valid entries in ring, <= len(ring)
}

// NewDecisionTrace creates a trace retaining capacity entries.
func NewDecisionTrace(capacity int) *DecisionTrace {
	if capacity <= 0 {
		capacity = 1024
	}
	return &DecisionTrace{ring: make([]Decision, capacity)}
}

// Add appends a decision, stamping its sequence number, and returns it.
func (t *DecisionTrace) Add(d Decision) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	d.Seq = t.seq
	t.ring[t.next] = d
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	return d.Seq
}

// Total reports how many decisions were ever traced.
func (t *DecisionTrace) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Recent returns up to n of the most recent decisions in arrival order
// (oldest first). n <= 0 returns everything retained.
func (t *DecisionTrace) Recent(n int) []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.count {
		n = t.count
	}
	out := make([]Decision, 0, n)
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}
