package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Handler serves the observability surface over HTTP:
//
//	GET /metrics        - plain-text exposition (Prometheus-style lines)
//	GET /metrics.json   - the full Snapshot as JSON
//	GET /trace?n=100    - the most recent advisor decisions as JSON
//	GET /debug/vars     - standard expvar output
//
// snap is called per request so values are always current; trace may be
// nil when the engine runs without an advisor.
func Handler(snap func() Snapshot, trace *DecisionTrace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteText(w, snap())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			n, _ = strconv.Atoi(s)
		}
		var ds []Decision
		if trace != nil {
			ds = trace.Recent(n)
		}
		_ = json.NewEncoder(w).Encode(ds)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// WriteText renders a snapshot as Prometheus-style text lines: counters
// and gauges as `name value`, recorders as `name_ns{q="0.95"} value` plus
// `name_count`. Metric names have non-alphanumeric runes mapped to '_'.
func WriteText(w interface{ Write([]byte) (int, error) }, s Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", sanitize(name), s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", sanitize(name), s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Latencies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		l := s.Latencies[name]
		base := sanitize(name)
		fmt.Fprintf(w, "%s_count %d\n", base, l.Count)
		fmt.Fprintf(w, "%s_avg_ns %d\n", base, int64(l.Avg))
		fmt.Fprintf(w, "%s_ns{q=\"0.5\"} %d\n", base, int64(l.P50))
		fmt.Fprintf(w, "%s_ns{q=\"0.95\"} %d\n", base, int64(l.P95))
		fmt.Fprintf(w, "%s_ns{q=\"0.99\"} %d\n", base, int64(l.P99))
	}
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// PublishExpvar registers the snapshot function as an expvar variable.
// Safe to call more than once per process (later calls are no-ops, since
// expvar panics on duplicate names).
func PublishExpvar(name string, snap func() Snapshot) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return snap() }))
}
