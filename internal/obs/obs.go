// Package obs is the engine's observability substrate: lock-free
// counters and gauges, fixed-capacity ring recorders for latency samples
// with quantile snapshots (p50/p95/p99), a named-instrument registry, and
// an append-only trace of the adaptive storage advisor's decisions. Every
// subsystem (engine op classes, simnet traffic, redo-log broker, site
// maintenance) records into one shared Registry; cmd/proteusd exports it
// over HTTP and expvar, and the experiment harness reads quantiles from
// snapshots instead of re-sorting raw sample slices.
//
// Recording is O(1) and allocation-free on the hot path: counters and
// gauges are single atomics, and a Recorder write is one atomic increment
// plus one atomic slot store into a power-of-two ring — the previous
// engine sampler did a full 200k-element copy per record once full.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may go negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Recorder retains the most recent samples in a fixed-capacity ring and
// serves quantile snapshots over them. Record is O(1): an atomic sequence
// increment plus one atomic slot store; concurrent writers race only on
// distinct slots (or benignly on the same slot, where either sample is a
// valid member of the window). Totals (count, sum) cover every sample ever
// recorded; quantiles cover the retained window.
type Recorder struct {
	count atomic.Int64
	sum   atomic.Int64 // nanoseconds
	slots []int64      // accessed atomically; len is a power of two
}

// NewRecorder creates a recorder retaining ~capacity samples (rounded up
// to a power of two; minimum 16).
func NewRecorder(capacity int) *Recorder {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Recorder{slots: make([]int64, n)}
}

// Cap reports the ring capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// Record adds one latency sample.
func (r *Recorder) Record(d time.Duration) {
	i := r.count.Add(1) - 1
	r.sum.Add(int64(d))
	atomic.StoreInt64(&r.slots[int(i)&(len(r.slots)-1)], int64(d))
}

// Count reports how many samples were ever recorded.
func (r *Recorder) Count() int64 { return r.count.Load() }

// Reset clears the recorder (between experiment phases). Not atomic with
// respect to concurrent Record calls; callers quiesce recording first.
func (r *Recorder) Reset() {
	r.count.Store(0)
	r.sum.Store(0)
}

// Samples returns the retained window in arrival order (oldest first).
func (r *Recorder) Samples() []time.Duration {
	n := r.count.Load()
	if n == 0 {
		return nil
	}
	size := int64(len(r.slots))
	retained := n
	if retained > size {
		retained = size
	}
	out := make([]time.Duration, retained)
	for k := int64(0); k < retained; k++ {
		idx := (n - retained + k) & (size - 1)
		out[k] = time.Duration(atomic.LoadInt64(&r.slots[idx]))
	}
	return out
}

// LatencySnapshot summarizes a recorder: lifetime count and mean, and
// order statistics over the retained window.
type LatencySnapshot struct {
	Count int64
	Avg   time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Snapshot computes the current latency summary.
func (r *Recorder) Snapshot() LatencySnapshot {
	n := r.count.Load()
	if n == 0 {
		return LatencySnapshot{}
	}
	snap := LatencySnapshot{Count: n, Avg: time.Duration(r.sum.Load() / n)}
	window := r.Samples()
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	snap.Min = window[0]
	snap.Max = window[len(window)-1]
	snap.P50 = quantile(window, 0.50)
	snap.P95 = quantile(window, 0.95)
	snap.P99 = quantile(window, 0.99)
	return snap
}

// quantile picks the nearest-rank order statistic from sorted samples.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Registry holds named instruments. Lookup creates on first use, so
// subsystems can fetch their instruments without coordination; hot paths
// cache the returned pointers rather than re-looking-up per event.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	recorders map[string]*Recorder
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		recorders: make(map[string]*Recorder),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Recorder returns the named latency recorder, creating it with the given
// capacity on first use.
func (r *Registry) Recorder(name string, capacity int) *Recorder {
	r.mu.RLock()
	rec := r.recorders[name]
	r.mu.RUnlock()
	if rec != nil {
		return rec
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec = r.recorders[name]; rec == nil {
		rec = NewRecorder(capacity)
		r.recorders[name] = rec
	}
	return rec
}

// Snapshot is a point-in-time copy of every instrument, suitable for
// rendering, RPC transfer (gob/JSON) and test assertions.
type Snapshot struct {
	Counters  map[string]int64
	Gauges    map[string]int64
	Latencies map[string]LatencySnapshot
}

// Snapshot captures the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{
		Counters:  make(map[string]int64, len(r.counters)),
		Gauges:    make(map[string]int64, len(r.gauges)),
		Latencies: make(map[string]LatencySnapshot, len(r.recorders)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, rec := range r.recorders {
		snap.Latencies[name] = rec.Snapshot()
	}
	return snap
}
