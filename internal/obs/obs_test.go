package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if reg.Counter("x.count") != c {
		t.Error("counter not interned")
	}
	g := reg.Gauge("x.gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
	snap := reg.Snapshot()
	if snap.Counters["x.count"] != 5 || snap.Gauges["x.gauge"] != 5 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestRecorderQuantiles(t *testing.T) {
	r := NewRecorder(1 << 12)
	// 1..1000 µs uniformly: exact order statistics are known.
	for i := 1; i <= 1000; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	s := r.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	checks := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"min", s.Min, 1 * time.Microsecond},
		{"max", s.Max, 1000 * time.Microsecond},
		{"p50", s.P50, 500 * time.Microsecond},
		{"p95", s.P95, 950 * time.Microsecond},
		{"p99", s.P99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	wantAvg := 500500 * time.Microsecond / 1000
	if s.Avg != wantAvg {
		t.Errorf("avg = %v, want %v", s.Avg, wantAvg)
	}
}

func TestRecorderWindowAndOrder(t *testing.T) {
	r := NewRecorder(16) // exact power of two
	for i := 1; i <= 40; i++ {
		r.Record(time.Duration(i))
	}
	got := r.Samples()
	if len(got) != 16 {
		t.Fatalf("retained = %d", len(got))
	}
	for k, d := range got {
		if want := time.Duration(25 + k); d != want {
			t.Fatalf("samples[%d] = %v, want %v (arrival order)", k, d, want)
		}
	}
	// Quantiles cover only the retained window.
	if s := r.Snapshot(); s.Min != 25 || s.Max != 40 {
		t.Errorf("window min/max = %v/%v", s.Min, s.Max)
	}
	r.Reset()
	if s := r.Snapshot(); s.Count != 0 || len(r.Samples()) != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines (run
// under -race) and checks the totals and quantile bounds stay coherent.
func TestRecorderConcurrent(t *testing.T) {
	reg := NewRegistry()
	r := reg.Recorder("conc.lat", 1<<10)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(time.Duration(w*per+i+1) * time.Microsecond)
				if i%64 == 0 {
					_ = r.Snapshot() // concurrent readers must be safe
				}
			}
		}()
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 100; i++ {
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
	snapWG.Wait()

	s := r.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	lo, hi := time.Microsecond, time.Duration(workers*per)*time.Microsecond
	for _, q := range []time.Duration{s.Min, s.P50, s.P95, s.P99, s.Max} {
		if q < lo || q > hi {
			t.Errorf("quantile %v outside recorded range [%v, %v]", q, lo, hi)
		}
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max || s.Min > s.P50 {
		t.Errorf("quantiles not ordered: %+v", s)
	}
}

func TestDecisionTrace(t *testing.T) {
	tr := NewDecisionTrace(4)
	for i := 0; i < 6; i++ {
		seq := tr.Add(Decision{Partition: uint64(i), Trigger: "olap-plan"})
		if seq != int64(i+1) {
			t.Fatalf("seq = %d", seq)
		}
	}
	if tr.Total() != 6 {
		t.Errorf("total = %d", tr.Total())
	}
	got := tr.Recent(0)
	if len(got) != 4 {
		t.Fatalf("retained = %d", len(got))
	}
	for k, d := range got {
		if d.Seq != int64(3+k) || d.Partition != uint64(2+k) {
			t.Errorf("recent[%d] = %+v", k, d)
		}
	}
	if last := tr.Recent(1); len(last) != 1 || last[0].Seq != 6 {
		t.Errorf("recent(1) = %+v", last)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("net.bytes").Add(128)
	reg.Recorder("engine.oltp", 64).Record(3 * time.Millisecond)
	tr := NewDecisionTrace(8)
	tr.Add(Decision{Partition: 9, Trigger: "capacity", Kind: "tier", Executed: true})

	h := Handler(reg.Snapshot, tr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{"net_bytes 128", "engine_oltp_count 1", `engine_oltp_ns{q="0.95"}`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	if snap.Counters["net.bytes"] != 128 || snap.Latencies["engine.oltp"].Count != 1 {
		t.Errorf("json snapshot = %+v", snap)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?n=5", nil))
	var ds []Decision
	if err := json.Unmarshal(rec.Body.Bytes(), &ds); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if len(ds) != 1 || ds[0].Partition != 9 || ds[0].Trigger != "capacity" {
		t.Errorf("trace = %+v", ds)
	}
}
