// Package harness drives HTAP experiments the way the paper's OLTPBench
// runs do (§6.1): a set of clients each submitting either OLTP or OLAP
// requests in a configured mix, measured either to completion (fixed work)
// or for a fixed duration, with per-class latency/throughput statistics,
// a per-interval timeline (for the performance-over-time figures), and
// confidence intervals across repeated runs.
package harness

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/query"
)

// Client produces one logical client's requests. Implementations carry
// client-local RNG state.
type Client interface {
	OLTP() *query.Txn
	OLAP() *query.Query
}

// ClientFactory builds the i-th client.
type ClientFactory func(i int, r *rand.Rand) Client

// Mix is an HTAP client mix (§6.1): every client interleaves OLTPPerOLAP
// transactions with each OLAP query.
type Mix struct {
	Name        string
	OLTPPerOLAP int
}

// The three standard mixes for YCSB-style runs.
var (
	OLTPHeavy = Mix{Name: "oltp-heavy", OLTPPerOLAP: 10}
	Balanced  = Mix{Name: "balanced", OLTPPerOLAP: 6}
	OLAPHeavy = Mix{Name: "olap-heavy", OLTPPerOLAP: 3}
)

// Config parameterizes one run.
type Config struct {
	Clients int
	Mix     Mix
	// RoundsPerClient is the OLAP count per client in completion runs.
	RoundsPerClient int
	// Duration, when > 0, runs a timed experiment instead.
	Duration time.Duration
	// TimelineBucket aggregates the over-time series (0 disables).
	TimelineBucket time.Duration
	Seed           int64
	// OnRound, when set, is invoked after every client round (for
	// mid-run workload shifts).
	OnRound func(client, round int)
}

// Bucket is one timeline interval.
type Bucket struct {
	Start   time.Duration // offset from run start
	OLTP    int64
	OLAP    int64
	OLTPLat time.Duration // average within the bucket
	OLAPLat time.Duration
}

// Result aggregates one run.
type Result struct {
	Wall       time.Duration
	OLTPCount  int64
	OLAPCount  int64
	Errors     int64
	OLTPLatAvg time.Duration
	OLTPLatP95 time.Duration
	OLAPLatAvg time.Duration
	OLAPLatP95 time.Duration
	Timeline   []Bucket
	// LastOLAP carries the final OLAP result observed (freshness checks).
	LastOLAP exec.Rel
}

// OLTPThroughput reports committed transactions per second.
func (r Result) OLTPThroughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OLTPCount) / r.Wall.Seconds()
}

// OLAPThroughput reports queries per second.
func (r Result) OLAPThroughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OLAPCount) / r.Wall.Seconds()
}

type sample struct {
	at   time.Duration
	lat  time.Duration
	olap bool
}

// Run executes one experiment against an engine.
func Run(e *cluster.Engine, factory ClientFactory, cfg Config) Result {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Mix.OLTPPerOLAP <= 0 {
		cfg.Mix.OLTPPerOLAP = 1
	}
	if cfg.RoundsPerClient <= 0 && cfg.Duration <= 0 {
		cfg.RoundsPerClient = 10
	}

	var mu sync.Mutex
	var samples []sample
	var errs int64
	var lastOLAP exec.Rel

	start := time.Now()
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			client := factory(c, r)
			sess := e.NewSession()
			var local []sample
			round := 0
			for {
				if cfg.Duration > 0 {
					if time.Now().After(deadline) {
						break
					}
				} else if round >= cfg.RoundsPerClient {
					break
				}
				// One round: 1 OLAP + OLTPPerOLAP transactions.
				t0 := time.Now()
				res, err := e.ExecuteQuery(sess, client.OLAP())
				if err != nil {
					atomic.AddInt64(&errs, 1)
				} else {
					local = append(local, sample{at: t0.Sub(start), lat: time.Since(t0), olap: true})
					mu.Lock()
					lastOLAP = res
					mu.Unlock()
				}
				for i := 0; i < cfg.Mix.OLTPPerOLAP; i++ {
					if cfg.Duration > 0 && time.Now().After(deadline) {
						break
					}
					t1 := time.Now()
					if _, err := e.ExecuteTxn(sess, client.OLTP()); err != nil {
						atomic.AddInt64(&errs, 1)
					} else {
						local = append(local, sample{at: t1.Sub(start), lat: time.Since(t1), olap: false})
					}
				}
				if cfg.OnRound != nil {
					cfg.OnRound(c, round)
				}
				round++
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	res := Result{Wall: wall, Errors: errs, LastOLAP: lastOLAP}
	var oltpLats, olapLats []time.Duration
	for _, s := range samples {
		if s.olap {
			res.OLAPCount++
			olapLats = append(olapLats, s.lat)
		} else {
			res.OLTPCount++
			oltpLats = append(oltpLats, s.lat)
		}
	}
	res.OLTPLatAvg, res.OLTPLatP95 = latStats(oltpLats)
	res.OLAPLatAvg, res.OLAPLatP95 = latStats(olapLats)

	if cfg.TimelineBucket > 0 {
		res.Timeline = buildTimeline(samples, wall, cfg.TimelineBucket)
	}
	return res
}

func latStats(lats []time.Duration) (avg, p95 time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, l := range sorted {
		total += l
	}
	idx := int(0.95 * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return total / time.Duration(len(sorted)), sorted[idx]
}

func buildTimeline(samples []sample, wall, bucket time.Duration) []Bucket {
	n := int(wall/bucket) + 1
	buckets := make([]Bucket, n)
	sums := make([]struct{ oltp, olap time.Duration }, n)
	for i := range buckets {
		buckets[i].Start = time.Duration(i) * bucket
	}
	for _, s := range samples {
		i := int(s.at / bucket)
		if i >= n {
			i = n - 1
		}
		if s.olap {
			buckets[i].OLAP++
			sums[i].olap += s.lat
		} else {
			buckets[i].OLTP++
			sums[i].oltp += s.lat
		}
	}
	for i := range buckets {
		if buckets[i].OLTP > 0 {
			buckets[i].OLTPLat = sums[i].oltp / time.Duration(buckets[i].OLTP)
		}
		if buckets[i].OLAP > 0 {
			buckets[i].OLAPLat = sums[i].olap / time.Duration(buckets[i].OLAP)
		}
	}
	return buckets
}

// CI95 reports the mean and half-width 95% confidence interval of values
// (normal approximation, as the paper's error bars).
func CI95(values []float64) (mean, half float64) {
	n := float64(len(values))
	if n == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range values {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 1.96 * sd / math.Sqrt(n)
}

// FormatDuration renders a duration rounded for tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
