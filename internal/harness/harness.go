// Package harness drives HTAP experiments the way the paper's OLTPBench
// runs do (§6.1): a set of clients each submitting either OLTP or OLAP
// requests in a configured mix, measured either to completion (fixed work)
// or for a fixed duration, with per-class latency/throughput statistics,
// a per-interval timeline (for the performance-over-time figures), and
// confidence intervals across repeated runs.
package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/vclock"
)

// Client produces one logical client's requests. Implementations carry
// client-local RNG state.
type Client interface {
	OLTP() *query.Txn
	OLAP() *query.Query
}

// ClientFactory builds the i-th client.
type ClientFactory func(i int, r *rand.Rand) Client

// Mix is an HTAP client mix (§6.1): every client interleaves OLTPPerOLAP
// transactions with each OLAP query.
type Mix struct {
	Name        string
	OLTPPerOLAP int
}

// The three standard mixes for YCSB-style runs.
var (
	OLTPHeavy = Mix{Name: "oltp-heavy", OLTPPerOLAP: 10}
	Balanced  = Mix{Name: "balanced", OLTPPerOLAP: 6}
	OLAPHeavy = Mix{Name: "olap-heavy", OLTPPerOLAP: 3}
)

// Config parameterizes one run.
type Config struct {
	Clients int
	Mix     Mix
	// RoundsPerClient is the OLAP count per client in completion runs.
	RoundsPerClient int
	// Duration, when > 0, runs a timed experiment instead.
	Duration time.Duration
	// TimelineBucket aggregates the over-time series (0 disables).
	TimelineBucket time.Duration
	Seed           int64
	// OnRound, when set, is invoked after every client round (for
	// mid-run workload shifts).
	OnRound func(client, round int)
	// Clock is the time source the run is measured and bounded on; nil
	// means the wall clock. Pass the engine's virtual clock so Duration,
	// per-op latencies and timeline buckets are all in virtual time.
	Clock vclock.Clock
}

// Bucket is one timeline interval.
type Bucket struct {
	Start   time.Duration // offset from run start
	OLTP    int64
	OLAP    int64
	OLTPLat time.Duration // average within the bucket
	OLAPLat time.Duration
}

// Result aggregates one run. Latency statistics come from the engine's
// lock-free latency recorders (cluster.Stats.Quantiles), which Run resets
// at the start so the windows cover exactly this run.
type Result struct {
	Wall       time.Duration
	OLTPCount  int64
	OLAPCount  int64
	Errors     int64
	OLTPLatAvg time.Duration
	OLTPLatP50 time.Duration
	OLTPLatP95 time.Duration
	OLTPLatP99 time.Duration
	OLAPLatAvg time.Duration
	OLAPLatP50 time.Duration
	OLAPLatP95 time.Duration
	OLAPLatP99 time.Duration
	Timeline   []Bucket
	// LastOLAP carries the final OLAP result observed (freshness checks).
	LastOLAP exec.Rel
}

// OLTPThroughput reports committed transactions per second.
func (r Result) OLTPThroughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OLTPCount) / r.Wall.Seconds()
}

// OLAPThroughput reports queries per second.
func (r Result) OLAPThroughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OLAPCount) / r.Wall.Seconds()
}

type sample struct {
	at   time.Duration
	lat  time.Duration
	olap bool
}

// Run executes one experiment against an engine.
func Run(e *cluster.Engine, factory ClientFactory, cfg Config) Result {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Mix.OLTPPerOLAP <= 0 {
		cfg.Mix.OLTPPerOLAP = 1
	}
	if cfg.RoundsPerClient <= 0 && cfg.Duration <= 0 {
		cfg.RoundsPerClient = 10
	}

	clk := vclock.OrWall(cfg.Clock)

	var mu sync.Mutex
	var samples []sample
	var errs int64
	var lastOLAP exec.Rel

	// Start each run from clean engine counters so the latency windows and
	// class stats cover exactly this run (warm-up runs are separate Runs).
	e.Stats().Reset()

	start := clk.Now()
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer vclock.Enter(clk)()
			r := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			client := factory(c, r)
			sess := e.NewSession()
			var local []sample
			round := 0
			for {
				if cfg.Duration > 0 {
					if clk.Now().After(deadline) {
						break
					}
				} else if round >= cfg.RoundsPerClient {
					break
				}
				// One round: 1 OLAP + OLTPPerOLAP transactions.
				t0 := clk.Now()
				res, err := e.ExecuteQuery(context.Background(), sess, client.OLAP())
				if err != nil {
					atomic.AddInt64(&errs, 1)
				} else {
					local = append(local, sample{at: t0.Sub(start), lat: clk.Since(t0), olap: true})
					mu.Lock()
					lastOLAP = res
					mu.Unlock()
				}
				for i := 0; i < cfg.Mix.OLTPPerOLAP; i++ {
					if cfg.Duration > 0 && clk.Now().After(deadline) {
						break
					}
					t1 := clk.Now()
					if _, err := e.ExecuteTxn(context.Background(), sess, client.OLTP()); err != nil {
						atomic.AddInt64(&errs, 1)
					} else {
						local = append(local, sample{at: t1.Sub(start), lat: clk.Since(t1), olap: false})
					}
				}
				if cfg.OnRound != nil {
					cfg.OnRound(c, round)
				}
				round++
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := clk.Since(start)

	res := Result{Wall: wall, Errors: errs, LastOLAP: lastOLAP}
	for _, s := range samples {
		if s.olap {
			res.OLAPCount++
		} else {
			res.OLTPCount++
		}
	}
	oltpQ, olapQ, _ := e.Stats().Quantiles()
	res.OLTPLatAvg, res.OLTPLatP50, res.OLTPLatP95, res.OLTPLatP99 =
		oltpQ.Avg, oltpQ.P50, oltpQ.P95, oltpQ.P99
	res.OLAPLatAvg, res.OLAPLatP50, res.OLAPLatP95, res.OLAPLatP99 =
		olapQ.Avg, olapQ.P50, olapQ.P95, olapQ.P99

	if cfg.TimelineBucket > 0 {
		res.Timeline = buildTimeline(samples, wall, cfg.TimelineBucket)
	}
	return res
}

func buildTimeline(samples []sample, wall, bucket time.Duration) []Bucket {
	n := int(wall/bucket) + 1
	buckets := make([]Bucket, n)
	sums := make([]struct{ oltp, olap time.Duration }, n)
	for i := range buckets {
		buckets[i].Start = time.Duration(i) * bucket
	}
	for _, s := range samples {
		i := int(s.at / bucket)
		if i >= n {
			i = n - 1
		}
		if s.olap {
			buckets[i].OLAP++
			sums[i].olap += s.lat
		} else {
			buckets[i].OLTP++
			sums[i].oltp += s.lat
		}
	}
	for i := range buckets {
		if buckets[i].OLTP > 0 {
			buckets[i].OLTPLat = sums[i].oltp / time.Duration(buckets[i].OLTP)
		}
		if buckets[i].OLAP > 0 {
			buckets[i].OLAPLat = sums[i].olap / time.Duration(buckets[i].OLAP)
		}
	}
	return buckets
}

// CI95 reports the mean and half-width 95% confidence interval of values
// (normal approximation, as the paper's error bars).
func CI95(values []float64) (mean, half float64) {
	n := float64(len(values))
	if n == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range values {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 1.96 * sd / math.Sqrt(n)
}

// FormatDuration renders a duration rounded for tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
