package harness

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/types"
)

// fixtureClient reads and updates one row of a tiny table.
type fixtureClient struct {
	tbl *schema.Table
	r   *rand.Rand
}

func (c *fixtureClient) OLTP() *query.Txn {
	row := schema.RowID(c.r.Intn(50))
	return &query.Txn{Ops: []query.Op{{
		Kind: query.OpUpdate, Table: c.tbl.ID, Row: row,
		Cols: []schema.ColID{1}, Vals: []types.Value{types.NewFloat64(1)},
	}}}
}

func (c *fixtureClient) OLAP() *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{Table: c.tbl.ID, Cols: []schema.ColID{1}},
		Aggs:  []exec.AggSpec{{Func: exec.AggCount}},
	}}
}

func fixture(t *testing.T) (*cluster.Engine, ClientFactory) {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Net = simnet.Config{}
	e := cluster.New(cfg)
	t.Cleanup(e.Close)
	tbl, err := e.CreateTable(cluster.TableSpec{
		Name: "t",
		Cols: []schema.Column{
			{Name: "k", Kind: types.KindInt64},
			{Name: "v", Kind: types.KindFloat64},
		},
		MaxRows: 50, Partitions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows []schema.Row
	for i := int64(0); i < 50; i++ {
		rows = append(rows, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewFloat64(0),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, rows); err != nil {
		t.Fatal(err)
	}
	return e, func(i int, r *rand.Rand) Client { return &fixtureClient{tbl: tbl, r: r} }
}

func TestCompletionRunCounts(t *testing.T) {
	e, factory := fixture(t)
	res := Run(e, factory, Config{Clients: 3, Mix: Mix{OLTPPerOLAP: 4}, RoundsPerClient: 5, Seed: 1})
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.OLAPCount != 15 || res.OLTPCount != 60 {
		t.Errorf("counts = %d olap / %d oltp", res.OLAPCount, res.OLTPCount)
	}
	if res.Wall <= 0 || res.OLTPThroughput() <= 0 || res.OLAPThroughput() <= 0 {
		t.Error("timing not recorded")
	}
	if res.OLTPLatP95 < res.OLTPLatAvg/2 {
		t.Error("p95 implausibly below average")
	}
	if res.LastOLAP.NumRows() != 1 {
		t.Errorf("last olap = %v", res.LastOLAP)
	}
}

func TestTimedRunHonorsDeadline(t *testing.T) {
	e, factory := fixture(t)
	start := time.Now()
	res := Run(e, factory, Config{Clients: 2, Mix: Mix{OLTPPerOLAP: 2}, Duration: 150 * time.Millisecond, Seed: 2})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timed run took %v", elapsed)
	}
	if res.OLTPCount == 0 {
		t.Error("timed run did no work")
	}
}

func TestOnRoundCallback(t *testing.T) {
	e, factory := fixture(t)
	rounds := 0
	Run(e, factory, Config{Clients: 1, Mix: Mix{OLTPPerOLAP: 1}, RoundsPerClient: 4, Seed: 3,
		OnRound: func(c, r int) { rounds++ }})
	if rounds != 4 {
		t.Errorf("OnRound fired %d times", rounds)
	}
}

func TestDefaultsApplied(t *testing.T) {
	e, factory := fixture(t)
	// Zero config: 1 client, 1:1 mix, 10 rounds.
	res := Run(e, factory, Config{Seed: 4})
	if res.OLAPCount != 10 || res.OLTPCount != 10 {
		t.Errorf("default counts = %d/%d", res.OLAPCount, res.OLTPCount)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		1500 * time.Millisecond: "1.50s",
		2500 * time.Microsecond: "2.50ms",
		750 * time.Microsecond:  "750µs",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}
