package cost

import "proteus/internal/storage"

// The analytic bootstrap supplies cold-start latency estimates (in
// microseconds) before a learned model has enough observations. Constants
// mirror the simulated hardware (internal/disksim, internal/simnet
// defaults) so early estimates have the right shape: rows pay for full-row
// access, columns pay only for touched bytes, disk adds seek + transfer,
// compression discounts bytes, sorted scans discount by selectivity.
const (
	usPerCell      = 0.02  // CPU cost to materialize one cell
	usPerByte      = 0.001 // memory scan cost per byte
	usDiskSeek     = 60.0  // disksim default seek
	usPerDiskByte  = 0.002 // ~500 MB/s
	usNetBase      = 50.0  // simnet default per message
	usPerNetByte   = 0.001 // ~1 GB/s
	usWriteBase    = 0.5
	usPointBase    = 0.3
	usCommitPer    = 5.0
	usPerWaitEntry = 10.0
	rleDiscount    = 0.5
)

func bootstrap(k modelKey, x []float64) float64 {
	switch k.op {
	case OpScan:
		card, inB, outB, sel := x[0], x[1], x[2], x[3]
		var bytes float64
		if k.layout.format == storage.RowFormat {
			// Row scans materialize whole rows regardless of projection.
			bytes = card * inB
		} else {
			bytes = card * (inB*0.3 + outB)
		}
		if k.layout.compressed {
			bytes *= rleDiscount
		}
		if enc := x[4]; enc > 0 {
			// Code-operating kernels skip decoding for the encoded fraction
			// of the scanned bytes.
			bytes *= 1 - 0.3*clamp01(enc)
		}
		us := bytes * usPerByte
		if k.variant == ScanSorted && k.layout.sorted {
			us *= clamp01(sel + 0.05)
		}
		if k.layout.tier == storage.DiskTier {
			us += usDiskSeek + bytes*usPerDiskByte
		}
		return us + card*usPerCell*0.1
	case OpPointRead:
		cells, rowB := x[0], x[1]
		us := usPointBase + cells*usPerCell + rowB*usPerByte
		if k.layout.tier == storage.DiskTier {
			us += usDiskSeek + rowB*usPerDiskByte
		}
		return us
	case OpWrite:
		cells, rowB := x[0], x[1]
		us := usWriteBase + cells*usPerCell
		if k.layout.format == storage.RowFormat {
			us += rowB * usPerByte // whole-row rewrite
		} else {
			us += cells * usPerCell // delta insert
		}
		if k.layout.tier == storage.DiskTier {
			us += 1.0 // buffered: amortized flush cost
		}
		return us
	case OpBulkLoad:
		card, rowB := x[0], x[1]
		us := card * (rowB*usPerByte*2 + usPerCell)
		if k.layout.tier == storage.DiskTier {
			us += usDiskSeek + card*rowB*usPerDiskByte
		}
		if k.layout.sorted {
			us *= 1.5
		}
		return us
	case OpSort:
		card, rowB := x[0], x[1]
		return card * (usPerCell + rowB*usPerByte) * log2(card)
	case OpHashBuild:
		card, rowB := x[0], x[1]
		return card * (usPerCell*2 + rowB*usPerByte)
	case OpJoin:
		l, r, out, rowB := x[0], x[1], x[2], x[3]
		switch k.variant {
		case JoinMerge:
			return (l + r + out) * (usPerCell + rowB*usPerByte*0.5)
		case JoinNested:
			return l*r*usPerCell*0.1 + out*usPerCell
		default: // hash
			return (l+r)*usPerCell*2 + out*(usPerCell+rowB*usPerByte)
		}
	case OpAggregate:
		in, out, rowB := x[0], x[1], x[2]
		us := in * (usPerCell + rowB*usPerByte*0.3)
		if k.variant == AggSort {
			us += out * usPerCell
		}
		return us + out*usPerCell
	case OpNetwork:
		sent, recv := x[2], x[3]
		return usNetBase + (sent+recv)*usPerNetByte
	case OpLock:
		waiters, recent := x[0], x[1]
		return 0.2 + waiters*recent
	case OpWaitUpdates:
		return x[0] * usPerWaitEntry
	case OpCommit:
		readP, writeP, sites := x[0], x[1], x[2]
		us := usCommitPer * (readP*0.2 + writeP)
		if sites > 1 {
			us += usNetBase * 2 * sites // 2PC round trips
		}
		return us
	}
	return 1
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func log2(v float64) float64 {
	if v < 2 {
		return 1
	}
	n := 0.0
	for v >= 2 {
		v /= 2
		n++
	}
	return n
}
