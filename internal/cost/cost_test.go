package cost

import (
	"math/rand"
	"testing"
	"time"

	"proteus/internal/storage"
)

func rowLayout() storage.Layout { return storage.DefaultRowLayout() }
func colLayout() storage.Layout { return storage.DefaultColumnLayout() }

func TestBootstrapShapes(t *testing.T) {
	m := NewModel()
	// Column scan with narrow projection must be cheaper than row scan of
	// the same relation (Figure 3's asymmetry).
	rowScan := m.Predict(OpScan, ScanSeq, rowLayout(), ScanFeatures(10000, 80, 8, 1))
	colScan := m.Predict(OpScan, ScanSeq, colLayout(), ScanFeatures(10000, 80, 8, 1))
	if colScan >= rowScan {
		t.Errorf("col scan %v !< row scan %v", colScan, rowScan)
	}
	// Row write cheaper than column write? Paper Fig 3a: row updates ~2x
	// faster than column. Column writes here hit the delta store (cheap),
	// but merged costs appear in scans; at minimum both are positive.
	rowWrite := m.Predict(OpWrite, VariantDefault, rowLayout(), WriteFeatures(10, 80))
	colWrite := m.Predict(OpWrite, VariantDefault, colLayout(), WriteFeatures(10, 80))
	if rowWrite <= 0 || colWrite <= 0 {
		t.Errorf("writes: %v %v", rowWrite, colWrite)
	}
	// Disk point read dominated by seek.
	diskLayout := storage.Layout{Format: storage.RowFormat, Tier: storage.DiskTier, SortBy: storage.NoSort}
	diskRead := m.Predict(OpPointRead, VariantDefault, diskLayout, PointReadFeatures(5, 80))
	memRead := m.Predict(OpPointRead, VariantDefault, rowLayout(), PointReadFeatures(5, 80))
	if diskRead < 10*memRead {
		t.Errorf("disk read %v not >> mem read %v", diskRead, memRead)
	}
	// Compressed scan cheaper than uncompressed.
	rle := storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort, Compressed: true}
	rleScan := m.Predict(OpScan, ScanSeq, rle, ScanFeatures(10000, 80, 8, 1))
	if rleScan >= colScan {
		t.Errorf("rle scan %v !< col scan %v", rleScan, colScan)
	}
	// Sorted scan with low selectivity cheaper than sequential.
	sorted := storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 0}
	narrow := m.Predict(OpScan, ScanSorted, sorted, ScanFeatures(10000, 80, 8, 0.01))
	full := m.Predict(OpScan, ScanSeq, colLayout(), ScanFeatures(10000, 80, 8, 1))
	if narrow >= full {
		t.Errorf("sorted narrow scan %v !< full scan %v", narrow, full)
	}
}

func TestDistributedCommitCostlier(t *testing.T) {
	m := NewModel()
	local := m.Predict(OpCommit, VariantDefault, storage.Layout{}, CommitFeatures(2, 2, 1))
	dist := m.Predict(OpCommit, VariantDefault, storage.Layout{}, CommitFeatures(2, 2, 3))
	if dist <= local {
		t.Errorf("2PC %v !> local %v", dist, local)
	}
}

func TestLearningOverridesBootstrap(t *testing.T) {
	m := NewModel()
	l := rowLayout()
	// Feed a synthetic "true" cost: latency = 3us per cell.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		cells := 1 + r.Intn(100)
		m.Observe(Observation{
			Op: OpWrite, Layout: l,
			Features: WriteFeatures(cells, 80),
			Latency:  time.Duration(cells*3) * time.Microsecond,
		})
	}
	got := m.Predict(OpWrite, VariantDefault, l, WriteFeatures(50, 80))
	want := 150 * time.Microsecond
	if got < want/2 || got > want*2 {
		t.Errorf("learned predict = %v, want ~%v", got, want)
	}
	if m.Observations(OpWrite) != 500 {
		t.Errorf("observations = %d", m.Observations(OpWrite))
	}
}

func TestLayoutsLearnedSeparately(t *testing.T) {
	m := NewModel()
	for i := 0; i < 200; i++ {
		m.Observe(Observation{Op: OpWrite, Layout: rowLayout(),
			Features: WriteFeatures(10, 80), Latency: 10 * time.Microsecond})
		m.Observe(Observation{Op: OpWrite, Layout: colLayout(),
			Features: WriteFeatures(10, 80), Latency: 200 * time.Microsecond})
	}
	row := m.Predict(OpWrite, VariantDefault, rowLayout(), WriteFeatures(10, 80))
	col := m.Predict(OpWrite, VariantDefault, colLayout(), WriteFeatures(10, 80))
	if row >= col {
		t.Errorf("per-layout models not separate: row %v col %v", row, col)
	}
}

func TestAgnosticOpsIgnoreLayout(t *testing.T) {
	m := NewModel()
	for i := 0; i < 100; i++ {
		m.Observe(Observation{Op: OpNetwork, Layout: rowLayout(),
			Features: NetworkFeatures(0, 0, 1000, 100), Latency: 80 * time.Microsecond})
	}
	// Observations made under one layout inform predictions under another.
	a := m.Predict(OpNetwork, VariantDefault, rowLayout(), NetworkFeatures(0, 0, 1000, 100))
	b := m.Predict(OpNetwork, VariantDefault, colLayout(), NetworkFeatures(0, 0, 1000, 100))
	if a != b {
		t.Errorf("agnostic op diverges by layout: %v vs %v", a, b)
	}
}

func TestAccuracyTracked(t *testing.T) {
	m := NewModel()
	for i := 0; i < 50; i++ {
		m.Observe(Observation{Op: OpLock, Features: LockFeatures(0, 0), Latency: time.Microsecond})
	}
	acc := m.Accuracy()
	if _, ok := acc[OpLock]; !ok {
		t.Error("no accuracy for observed op")
	}
}

func TestVariantsSeparate(t *testing.T) {
	m := NewModel()
	l := colLayout()
	for i := 0; i < 200; i++ {
		m.Observe(Observation{Op: OpJoin, Variant: JoinMerge, Layout: l,
			Features: JoinFeatures(100, 100, 100, 32, 0.5), Latency: 10 * time.Microsecond})
		m.Observe(Observation{Op: OpJoin, Variant: JoinNested, Layout: l,
			Features: JoinFeatures(100, 100, 100, 32, 0.5), Latency: 5 * time.Millisecond})
	}
	merge := m.Predict(OpJoin, JoinMerge, l, JoinFeatures(100, 100, 100, 32, 0.5))
	nested := m.Predict(OpJoin, JoinNested, l, JoinFeatures(100, 100, 100, 32, 0.5))
	if merge >= nested {
		t.Errorf("variants not separate: merge %v nested %v", merge, nested)
	}
}

func TestOpStringsAndAwareness(t *testing.T) {
	if OpScan.String() != "scan" || OpCommit.String() != "commit" {
		t.Error("op names wrong")
	}
	if !OpScan.LayoutAware() || OpNetwork.LayoutAware() {
		t.Error("awareness wrong")
	}
	if JoinMerge.String() != "merge" {
		t.Errorf("variant name = %q", JoinMerge.String())
	}
}

func TestPredictNeverNegative(t *testing.T) {
	m := NewModel()
	// Train with tiny latencies then ask for an extrapolation that a raw
	// linear model could send negative.
	for i := 0; i < 100; i++ {
		m.Observe(Observation{Op: OpWaitUpdates, Features: WaitFeatures(100 - i), Latency: time.Duration(100-i) * time.Microsecond})
	}
	if got := m.Predict(OpWaitUpdates, VariantDefault, storage.Layout{}, WaitFeatures(0)); got < 0 {
		t.Errorf("negative prediction %v", got)
	}
}
