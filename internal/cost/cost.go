// Package cost implements Proteus' learned cost functions (§5.2.1,
// Table 1): per-storage-layout models predicting operator latency from
// cardinalities, column sizes and selectivities, plus layout-agnostic
// models for network requests, lock acquisition, update waits and commits.
// Models train continuously from observed latencies; until a model has
// seen enough observations, an analytic bootstrap keyed to the simulated
// hardware constants supplies cold-start estimates (the paper reports its
// cold-start cost model within ~11% RMSE).
package cost

import (
	"fmt"
	"math"
	"sync"
	"time"

	"proteus/internal/learn"
	"proteus/internal/storage"
)

// Op identifies a cost function from Table 1.
type Op uint8

// Cost function identifiers.
const (
	OpBulkLoad Op = iota
	OpWrite       // insert/update/delete
	OpPointRead
	OpScan
	OpSort
	OpHashBuild
	OpJoin
	OpAggregate
	OpNetwork
	OpLock
	OpWaitUpdates
	OpCommit
	numOps
)

// String names the op.
func (o Op) String() string {
	names := [...]string{"bulkload", "write", "pointread", "scan", "sort",
		"hashbuild", "join", "aggregate", "network", "lock", "wait", "commit"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// LayoutAware reports whether the op has per-layout models (Table 1's
// "storage layout-aware" section).
func (o Op) LayoutAware() bool {
	switch o {
	case OpNetwork, OpLock, OpWaitUpdates, OpCommit:
		return false
	}
	return true
}

// Variant refines ops with algorithm choices (Table 1 parentheses).
type Variant uint8

// Operator variants.
const (
	VariantDefault Variant = iota
	ScanSeq
	ScanSorted
	ScanIndex
	JoinHash
	JoinMerge
	JoinNested
	AggHash
	AggSort
	// JoinHashBatch is the batch-native hash join (columnar build/probe,
	// runtime filter, optional spill); it learns its own model per layout
	// so observations never contaminate the row JoinHash curve.
	JoinHashBatch
)

// String names the variant.
func (v Variant) String() string {
	names := [...]string{"", "seq", "sorted", "index", "hash", "merge", "nested", "agghash", "aggsort", "hashbatch"}
	if int(v) < len(names) {
		return names[v]
	}
	return fmt.Sprintf("variant(%d)", uint8(v))
}

// featureDim is the fixed feature-vector width for every cost function.
// Vectors are zero-padded; the feature constructors below document each
// op's layout (mirroring the Arguments column of Table 1).
const featureDim = 6

// ScanFeatures: cardinality, input bytes/row, output bytes/row, selectivity.
func ScanFeatures(card int, inBytes, outBytes int, selectivity float64) []float64 {
	return ScanFeaturesEnc(card, inBytes, outBytes, selectivity, 0)
}

// ScanFeaturesEnc extends ScanFeatures with the fraction of the scanned
// bytes held in encoded column form (RLE/dictionary/FoR), letting the
// per-layout scan models learn how much code-operating kernels discount a
// scan — the signal the advisor weighs when choosing compressed layouts.
func ScanFeaturesEnc(card int, inBytes, outBytes int, selectivity, encodedFrac float64) []float64 {
	return []float64{float64(card), float64(inBytes), float64(outBytes), selectivity, encodedFrac, 0}
}

// WriteFeatures: cells accessed, bytes per row.
func WriteFeatures(cells, rowBytes int) []float64 {
	return []float64{float64(cells), float64(rowBytes), 0, 0, 0, 0}
}

// PointReadFeatures: cells read, bytes per row.
func PointReadFeatures(cells, rowBytes int) []float64 {
	return []float64{float64(cells), float64(rowBytes), 0, 0, 0, 0}
}

// BulkLoadFeatures: cardinality, bytes per row.
func BulkLoadFeatures(card, rowBytes int) []float64 {
	return []float64{float64(card), float64(rowBytes), 0, 0, 0, 0}
}

// SortFeatures: cardinality, bytes per row.
func SortFeatures(card, rowBytes int) []float64 {
	return []float64{float64(card), float64(rowBytes), 0, 0, 0, 0}
}

// JoinFeatures: left/right/output cardinalities, left+right bytes per row,
// join selectivity.
func JoinFeatures(lCard, rCard, outCard, rowBytes int, selectivity float64) []float64 {
	return []float64{float64(lCard), float64(rCard), float64(outCard), float64(rowBytes), selectivity, 0}
}

// JoinFeaturesBatch: the batch hash join's feature layout — build/probe/
// output cardinalities, bytes per row, probe selectivity after runtime
// filtering, and bytes spilled through the grace-join device. Unlike
// JoinFeatures it keys on build (not left/right) cardinality, since the
// batch join's cost is dominated by the build table and the post-filter
// probe stream, and it uses the sixth slot for spill volume.
func JoinFeaturesBatch(buildCard, probeCard, outCard, rowBytes int, probeSel float64, spillBytes int64) []float64 {
	return []float64{float64(buildCard), float64(probeCard), float64(outCard), float64(rowBytes), probeSel, float64(spillBytes)}
}

// AggFeatures: input and output cardinality, bytes per row.
func AggFeatures(inCard, outCard, rowBytes int) []float64 {
	return []float64{float64(inCard), float64(outCard), float64(rowBytes), 0, 0, 0}
}

// NetworkFeatures: source/destination CPU utilization, bytes sent/received.
func NetworkFeatures(srcCPU, dstCPU float64, sent, recv int) []float64 {
	return []float64{srcCPU, dstCPU, float64(sent), float64(recv), 0, 0}
}

// LockFeatures: partition contention (queued waiters, recent wait in µs).
func LockFeatures(waiters int, recentWait time.Duration) []float64 {
	return []float64{float64(waiters), float64(recentWait.Microseconds()), 0, 0, 0, 0}
}

// WaitFeatures: number of updates that must be applied.
func WaitFeatures(updates int) []float64 {
	return []float64{float64(updates), 0, 0, 0, 0, 0}
}

// CommitFeatures: partitions read, partitions written, sites involved.
func CommitFeatures(readParts, writeParts, sites int) []float64 {
	return []float64{float64(readParts), float64(writeParts), float64(sites), 0, 0, 0}
}

// layoutKey collapses a layout into the model key. Layout-aware cost
// functions are learned per storage tier, format and enabled optimizations
// (§5.2.1); the sort column's identity is irrelevant, only its presence.
type layoutKey struct {
	format     storage.Format
	tier       storage.Tier
	sorted     bool
	compressed bool
}

func keyOf(l storage.Layout) layoutKey {
	return layoutKey{l.Format, l.Tier, l.SortBy != storage.NoSort, l.Compressed}
}

type modelKey struct {
	op      Op
	variant Variant
	layout  layoutKey // zero for layout-agnostic ops
}

// predictor is the common interface over the learners.
type predictor interface {
	Observe(x []float64, y float64)
	Predict(x []float64) float64
	N() int
}

// Observation is one measured operator execution.
type Observation struct {
	Op       Op
	Variant  Variant
	Layout   storage.Layout // ignored for layout-agnostic ops
	Features []float64
	Latency  time.Duration
}

// Model is the full set of cost functions. Safe for concurrent use.
type Model struct {
	mu     sync.RWMutex
	models map[modelKey]predictor
	// warmup is the observation count below which the analytic bootstrap
	// answers predictions.
	warmup int
	seed   int64

	// Accuracy tracking: sum of squared error and of latency, per op.
	errSq  [numOps]float64
	latSum [numOps]float64
	obsN   [numOps]int
}

// NewModel creates an empty cost model.
func NewModel() *Model {
	return &Model{models: make(map[modelKey]predictor), warmup: 30}
}

// newPredictor picks the learner family per op: linear models for
// simple per-item costs, non-linear (derived-feature) regression for
// volume-driven operators, and a neural model for joins (§5.2.1 uses all
// three families). The volume operators regress over physically-derived
// products (cells scanned, bytes moved) rather than a generic polynomial
// expansion: workload feature distributions are often nearly constant,
// and a generic expansion fitted to a point generalizes badly when the
// advisor evaluates hypothetical layouts at shifted features.
func (m *Model) newPredictor(op Op) predictor {
	switch op {
	case OpJoin:
		m.seed++
		return learn.NewMLP(featureDim, 10, 0.01, m.seed)
	default:
		return learn.NewLinear(featureDim, 1e-3)
	}
}

// derive maps raw features onto the regression basis for volume-driven
// operators; other ops pass through. Applied identically when observing
// and predicting.
func derive(op Op, x []float64) []float64 {
	switch op {
	case OpScan:
		card, inB, outB, sel, enc := x[0], x[1], x[2], x[3], x[4]
		return []float64{card, card * inB, card * outB, card * inB * sel, card * inB * enc, 0}
	case OpBulkLoad, OpHashBuild, OpAggregate:
		card, rowB := x[0], x[1]
		return []float64{card, card * rowB, x[2], 0, 0, 0}
	case OpSort:
		card, rowB := x[0], x[1]
		lg := 1.0
		for c := card; c >= 2; c /= 2 {
			lg++
		}
		return []float64{card, card * rowB, card * lg, 0, 0, 0}
	}
	return x
}

func pad(x []float64) []float64 {
	if len(x) >= featureDim {
		return x[:featureDim]
	}
	out := make([]float64, featureDim)
	copy(out, x)
	return out
}

func (m *Model) modelFor(k modelKey) predictor {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.models[k]
	if !ok {
		p = m.newPredictor(k.op)
		m.models[k] = p
	}
	return p
}

func (m *Model) key(op Op, variant Variant, layout storage.Layout) modelKey {
	k := modelKey{op: op, variant: variant}
	if op.LayoutAware() {
		k.layout = keyOf(layout)
	}
	return k
}

// Observe trains the matching cost function with a measured latency and
// updates accuracy statistics (prediction error measured before training).
func (m *Model) Observe(obs Observation) {
	k := m.key(obs.Op, obs.Variant, obs.Layout)
	p := m.modelFor(k)
	x := derive(obs.Op, pad(obs.Features))
	actual := float64(obs.Latency.Microseconds())

	pred := m.predictWith(p, k, x)
	m.mu.Lock()
	m.errSq[obs.Op] += (pred - actual) * (pred - actual)
	m.latSum[obs.Op] += actual
	m.obsN[obs.Op]++
	m.mu.Unlock()

	p.Observe(x, actual)
}

// maxSaneUs bounds predictions: no single operator takes 100 s here.
// Ridge regressions over shifting feature distributions can briefly
// explode; out-of-range predictions fall back to the bootstrap.
const maxSaneUs = 1e8

// predictWith returns microseconds, falling back to the bootstrap during
// warm-up and when the learned model extrapolates outside sane bounds.
// x is the raw (underived) feature vector.
func (m *Model) predictWith(p predictor, k modelKey, x []float64) float64 {
	if p.N() < m.warmup {
		return bootstrap(k, x)
	}
	y := p.Predict(derive(k.op, x))
	if math.IsNaN(y) || y < 0 || y > maxSaneUs {
		return bootstrap(k, x)
	}
	return y
}

// Predict estimates an operator's latency.
func (m *Model) Predict(op Op, variant Variant, layout storage.Layout, features []float64) time.Duration {
	k := m.key(op, variant, layout)
	p := m.modelFor(k)
	us := m.predictWith(p, k, pad(features))
	return time.Duration(us * float64(time.Microsecond))
}

// Warm reports whether the matching model has enough observations to
// answer from learned state rather than the bootstrap.
func (m *Model) Warm(op Op, variant Variant, layout storage.Layout) bool {
	return m.modelFor(m.key(op, variant, layout)).N() >= m.warmup
}

// PredictBootstrap returns the analytic cold-start estimate, bypassing any
// learned model. Comparisons across layouts must not mix a learned
// estimate for one layout with a bootstrap for another (their calibrations
// differ); callers use this to keep both sides on the bootstrap whenever
// either side's model is cold.
func (m *Model) PredictBootstrap(op Op, variant Variant, layout storage.Layout, features []float64) time.Duration {
	us := bootstrap(m.key(op, variant, layout), pad(features))
	return time.Duration(us * float64(time.Microsecond))
}

// PredictPair estimates one operator under two alternative layouts from a
// consistent source: learned models when both are warm AND both produce
// valid (finite, non-negative) predictions; the bootstrap otherwise. A
// one-sided fallback would compare incompatible calibrations.
func (m *Model) PredictPair(op Op, variant Variant, a, b storage.Layout, features []float64) (time.Duration, time.Duration) {
	x := pad(features)
	ka, kb := m.key(op, variant, a), m.key(op, variant, b)
	pa, pb := m.modelFor(ka), m.modelFor(kb)
	if pa.N() >= m.warmup && pb.N() >= m.warmup {
		dx := derive(op, x)
		ya, yb := pa.Predict(dx), pb.Predict(dx)
		if !math.IsNaN(ya) && !math.IsNaN(yb) && ya >= 0 && yb >= 0 && ya <= maxSaneUs && yb <= maxSaneUs {
			return time.Duration(ya * float64(time.Microsecond)), time.Duration(yb * float64(time.Microsecond))
		}
	}
	return time.Duration(bootstrap(ka, x) * float64(time.Microsecond)),
		time.Duration(bootstrap(kb, x) * float64(time.Microsecond))
}

// Accuracy reports the relative RMSE per op: RMSE divided by mean observed
// latency (the metric of §6.3.6).
func (m *Model) Accuracy() map[Op]float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[Op]float64)
	for op := Op(0); op < numOps; op++ {
		if m.obsN[op] == 0 {
			continue
		}
		rmse := math.Sqrt(m.errSq[op] / float64(m.obsN[op]))
		mean := m.latSum[op] / float64(m.obsN[op])
		if mean > 0 {
			out[op] = rmse / mean
		}
	}
	return out
}

// Observations reports the total training observations per op.
func (m *Model) Observations(op Op) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.obsN[op]
}
