// bench_test.go holds testing.B benchmarks, one per paper table/figure
// (the full parameter sweeps live in cmd/proteus-bench; these benches
// measure the steady-state per-operation costs each artifact is built
// from), plus component micro-benchmarks for the storage layouts and
// operators.
package proteus

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/disksim"
	"proteus/internal/exec"
	"proteus/internal/harness"
	"proteus/internal/obs"
	"proteus/internal/partition"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
	"proteus/internal/workload/chbench"
	"proteus/internal/workload/twitter"
	"proteus/internal/workload/ycsb"
)

// --- Fig 3: row vs column microbenchmark ---------------------------------

func microPartition(b *testing.B, l storage.Layout, rows, cols int) *partition.Partition {
	b.Helper()
	kinds := make([]types.Kind, cols)
	for i := range kinds {
		kinds[i] = types.KindInt64
	}
	f := partition.Factory{Dev: disksim.New(disksim.Config{})}
	bounds := partition.Bounds{RowStart: 0, RowEnd: schema.RowID(rows), ColStart: 0, ColEnd: schema.ColID(cols)}
	p := partition.New(1, bounds, kinds, l, f)
	data := make([]schema.Row, rows)
	for i := range data {
		vals := make([]types.Value, cols)
		for c := range vals {
			vals[c] = types.NewInt64(int64(i*cols + c))
		}
		data[i] = schema.Row{ID: schema.RowID(i), Vals: vals}
	}
	if err := p.Load(data, 1); err != nil {
		b.Fatal(err)
	}
	return p
}

func benchUpdate(b *testing.B, l storage.Layout) {
	p := microPartition(b, l, 10000, 10)
	cols := make([]schema.ColID, 10)
	vals := make([]types.Value, 10)
	for i := range cols {
		cols[i] = schema.ColID(i)
		vals[i] = types.NewInt64(int64(-i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Update(p, schema.RowID(i%10000), cols, vals, uint64(i+2)); err != nil {
			b.Fatal(err)
		}
		// Bound retained MVCC versions/delta entries so the measurement
		// reflects steady-state update cost rather than unbounded history
		// (production engines GC old versions; see rowstore.Mem.GC).
		if i%8192 == 8191 {
			b.StopTimer()
			if _, _, err := p.Maintain(uint64(i+2), 0); err != nil {
				b.Fatal(err)
			}
			if err := p.ChangeLayout(l, partition.Factory{Dev: disksim.New(disksim.Config{})}, uint64(i+2)); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

func benchScan(b *testing.B, l storage.Layout, sel float64) {
	p := microPartition(b, l, 10000, 10)
	var pred storage.Pred
	if sel < 1 {
		pred = storage.Pred{{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(int64(100000 * sel))}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, _, _ := exec.Scan(p, []schema.ColID{1}, pred, storage.Latest)
		_ = rel
	}
}

// BenchmarkFig3aUpdateRow measures Fig 3a's row-format update latency.
func BenchmarkFig3aUpdateRow(b *testing.B) { benchUpdate(b, storage.DefaultRowLayout()) }

// BenchmarkFig3aUpdateColumn measures Fig 3a's column-format update latency.
func BenchmarkFig3aUpdateColumn(b *testing.B) { benchUpdate(b, storage.DefaultColumnLayout()) }

// BenchmarkFig3bScanRow10 measures Fig 3b (row, 10% selectivity).
func BenchmarkFig3bScanRow10(b *testing.B) { benchScan(b, storage.DefaultRowLayout(), 0.1) }

// BenchmarkFig3bScanColumn10 measures Fig 3b (column, 10% selectivity).
func BenchmarkFig3bScanColumn10(b *testing.B) { benchScan(b, storage.DefaultColumnLayout(), 0.1) }

// BenchmarkFig3cScanRow100 measures Fig 3c (row, full scan).
func BenchmarkFig3cScanRow100(b *testing.B) { benchScan(b, storage.DefaultRowLayout(), 1) }

// BenchmarkFig3cScanColumn100 measures Fig 3c (column, full scan).
func BenchmarkFig3cScanColumn100(b *testing.B) { benchScan(b, storage.DefaultColumnLayout(), 1) }

// --- Morsel executor vs legacy scan path -----------------------------------

// morselBenchEngine loads one multi-partition analytical table; disable
// forces the legacy per-segment executor for A/B comparison.
func morselBenchEngine(b *testing.B, disable bool) (*cluster.Engine, *schema.Table) {
	b.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Mode = cluster.ModeColumnStore
	cfg.NumSites = 2
	cfg.Net = simnet.Config{}
	cfg.ReplicationInterval = 50 * time.Millisecond
	cfg.DisableMorselExec = disable
	e := cluster.New(cfg)
	b.Cleanup(e.Close)
	const rows = 20000
	tbl, err := e.CreateTable(cluster.TableSpec{
		Name: "scanbench",
		Cols: []schema.Column{
			{Name: "id", Kind: types.KindInt64},
			{Name: "grp", Kind: types.KindInt64},
			{Name: "val", Kind: types.KindFloat64},
		},
		MaxRows: rows, Partitions: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]schema.Row, 0, rows)
	for i := int64(0); i < rows; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(float64(i)),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		b.Fatal(err)
	}
	return e, tbl
}

func benchScanQuery(b *testing.B, disable bool, mk func(*schema.Table) *query.Query) {
	e, tbl := morselBenchEngine(b, disable)
	sess := e.NewSession()
	q := mk(tbl)
	if _, err := e.ExecuteQuery(context.Background(), sess, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecuteQuery(context.Background(), sess, q); err != nil {
			b.Fatal(err)
		}
	}
}

func sumQuery(tbl *schema.Table) *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{2}},
		Aggs:  []exec.AggSpec{{Func: exec.AggSum, Col: 0}},
	}}
}

func limitQuery(tbl *schema.Table) *query.Query {
	return &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0}}, Limit: 100}
}

func filterQuery(tbl *schema.Table) *query.Query {
	return &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 2},
		Pred: storage.Pred{{Col: 1, Op: storage.CmpEq, Val: types.NewInt64(0)}}}}
}

// BenchmarkScanSumMorsel measures a full-table SUM on the morsel executor
// (partial aggregation inside the scan workers, no tuple materialization).
func BenchmarkScanSumMorsel(b *testing.B) { benchScanQuery(b, false, sumQuery) }

// BenchmarkScanSumLegacy is the same SUM on the legacy per-segment path.
func BenchmarkScanSumLegacy(b *testing.B) { benchScanQuery(b, true, sumQuery) }

// BenchmarkScanLimitMorsel measures LIMIT early termination: the feed
// closes once enough rows arrive, so most morsels are never scheduled.
func BenchmarkScanLimitMorsel(b *testing.B) { benchScanQuery(b, false, limitQuery) }

// BenchmarkScanLimitLegacy scans everything and truncates at the end.
func BenchmarkScanLimitLegacy(b *testing.B) { benchScanQuery(b, true, limitQuery) }

// BenchmarkScanFilterMorsel measures a 10%-selective row stream in bounded
// batches.
func BenchmarkScanFilterMorsel(b *testing.B) { benchScanQuery(b, false, filterQuery) }

// BenchmarkScanFilterLegacy materializes each segment whole.
func BenchmarkScanFilterLegacy(b *testing.B) { benchScanQuery(b, true, filterQuery) }

// --- Engine fixtures ------------------------------------------------------

func benchEngine(b *testing.B, mode cluster.Mode) *cluster.Engine {
	b.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Mode = mode
	cfg.NumSites = 2
	cfg.Net = simnet.Config{}
	cfg.ReplicationInterval = time.Millisecond
	e := cluster.New(cfg)
	b.Cleanup(e.Close)
	return e
}

func benchYCSB(b *testing.B, mode cluster.Mode) (*cluster.Engine, *ycsb.Workload) {
	b.Helper()
	e := benchEngine(b, mode)
	cfg := ycsb.DefaultConfig()
	cfg.Rows = 4000
	cfg.Partitions = 8
	w, err := ycsb.Setup(e, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e, w
}

// --- Figs 8a/9: YCSB per-system round cost --------------------------------

func benchYCSBRound(b *testing.B, mode cluster.Mode) {
	e, w := benchYCSB(b, mode)
	c := w.NewClient(0, rand.New(rand.NewSource(1)))
	sess := e.NewSession()
	e.Stats().Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecuteQuery(context.Background(), sess, c.OLAP()); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < harness.Balanced.OLTPPerOLAP; k++ {
			if _, err := e.ExecuteTxn(context.Background(), sess, c.OLTP()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	oltp, olap, _ := e.Stats().Quantiles()
	b.ReportMetric(float64(oltp.P95), "oltp-p95-ns")
	b.ReportMetric(float64(olap.P95), "olap-p95-ns")
}

// BenchmarkFig8aYCSBRoundProteus measures one balanced YCSB round (Fig 8a/9).
func BenchmarkFig8aYCSBRoundProteus(b *testing.B) { benchYCSBRound(b, cluster.ModeProteus) }

// BenchmarkFig8aYCSBRoundRowStore is the RS baseline.
func BenchmarkFig8aYCSBRoundRowStore(b *testing.B) { benchYCSBRound(b, cluster.ModeRowStore) }

// BenchmarkFig8aYCSBRoundColumnStore is the CS baseline.
func BenchmarkFig8aYCSBRoundColumnStore(b *testing.B) { benchYCSBRound(b, cluster.ModeColumnStore) }

// BenchmarkFig8aYCSBRoundJanus is the Janus baseline.
func BenchmarkFig8aYCSBRoundJanus(b *testing.B) { benchYCSBRound(b, cluster.ModeJanus) }

// BenchmarkFig8aYCSBRoundTiDB is the TiDB-like baseline.
func BenchmarkFig8aYCSBRoundTiDB(b *testing.B) { benchYCSBRound(b, cluster.ModeTiDB) }

// --- Figs 8b/10: CH-benCHmark ---------------------------------------------

func benchCH(b *testing.B, mode cluster.Mode) (*cluster.Engine, *chbench.Workload) {
	b.Helper()
	e := benchEngine(b, mode)
	cfg := chbench.DefaultConfig()
	cfg.LoadedOrdersPerDistrict = 20
	w, err := chbench.Setup(e, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e, w
}

// BenchmarkFig8bCHTransaction measures one TPC-C transaction (Figs 8b/10a).
func BenchmarkFig8bCHTransaction(b *testing.B) {
	e, w := benchCH(b, cluster.ModeProteus)
	c := w.NewClient(0, rand.New(rand.NewSource(2)))
	sess := e.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecuteTxn(context.Background(), sess, c.OLTP()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10bCHQuery measures each CH analytical query (Fig 10b).
func BenchmarkFig10bCHQuery(b *testing.B) {
	e, w := benchCH(b, cluster.ModeProteus)
	r := rand.New(rand.NewSource(3))
	sess := e.NewSession()
	for qn := 0; qn < chbench.NumQueries; qn++ {
		qn := qn
		b.Run(fmt.Sprintf("q%d", qn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.ExecuteQuery(context.Background(), sess, w.Query(qn, r)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figs 8d/11: Twitter ---------------------------------------------------

// BenchmarkFig11TwitterRound measures one balanced Twitter round.
func BenchmarkFig11TwitterRound(b *testing.B) {
	e := benchEngine(b, cluster.ModeProteus)
	cfg := twitter.DefaultConfig()
	cfg.Users = 300
	w, err := twitter.Setup(e, cfg)
	if err != nil {
		b.Fatal(err)
	}
	c := w.NewClient(0, rand.New(rand.NewSource(4)))
	sess := e.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecuteQuery(context.Background(), sess, c.OLAP()); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			if _, err := e.ExecuteTxn(context.Background(), sess, c.OLTP()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Fig 12: adaptation and scalability primitives -------------------------

// BenchmarkFig12LayoutChange measures one format change (§6.3.3 reports
// ~14 ms on the paper's testbed; scale differs here).
func BenchmarkFig12LayoutChange(b *testing.B) {
	e, _ := benchYCSB(b, cluster.ModeRowStore)
	tbl, _ := e.Catalog.TableByName("usertable")
	parts := e.Dir.TablePartitions(tbl.ID)
	layouts := []storage.Layout{storage.DefaultColumnLayout(), storage.DefaultRowLayout()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := parts[i%len(parts)]
		to := layouts[(i/len(parts))%2]
		if err := e.ChangeCopyLayout(m.ID, m.Master().Site, to); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 14: freshness probe ------------------------------------------------

// BenchmarkFig14FreshnessQuery measures the Appendix B.1 MIN-stamp probe.
func BenchmarkFig14FreshnessQuery(b *testing.B) {
	e := benchEngine(b, cluster.ModeProteus)
	cfg := ycsb.DefaultConfig()
	cfg.Rows = 4000
	cfg.Freshness = true
	w, err := ycsb.Setup(e, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sess := e.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecuteQuery(context.Background(), sess, w.FreshnessQuery(64)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 4/5: planning overheads -----------------------------------------

// BenchmarkTab5PlanTxn measures OLTP physical-plan generation (Table 5
// reports 0.18 ms average on the paper's testbed).
func BenchmarkTab5PlanTxn(b *testing.B) {
	e, w := benchYCSB(b, cluster.ModeProteus)
	c := w.NewClient(0, rand.New(rand.NewSource(5)))
	txns := make([]*query.Txn, 64)
	for i := range txns {
		txns[i] = c.OLTP()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Planner.PlanTxn(txns[i%len(txns)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab5PlanQuery measures OLAP physical-plan generation with plan
// caching (Table 5 reports 12.7 ms without reuse benefits).
func BenchmarkTab5PlanQuery(b *testing.B) {
	e, w := benchYCSB(b, cluster.ModeProteus)
	c := w.NewClient(0, rand.New(rand.NewSource(6)))
	q := c.OLAP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Planner.PlanQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Observability -----------------------------------------------------------

// BenchmarkObsRecorderSteadyState measures one latency record with the
// ring already full — the regime where the old bounded-append sampler
// copied its whole 200k-sample window per record. The ring write is O(1)
// no matter how many records preceded it.
func BenchmarkObsRecorderSteadyState(b *testing.B) {
	r := obs.NewRecorder(1 << 16)
	for i := 0; i < r.Cap()+1; i++ {
		r.Record(time.Duration(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(time.Duration(i))
	}
}

// BenchmarkObsRecorderParallel measures contended recording: every client
// goroutine records into the same per-class window on the request path.
func BenchmarkObsRecorderParallel(b *testing.B) {
	r := obs.NewRecorder(1 << 16)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(time.Microsecond)
		}
	})
}

// --- Component micro-benchmarks ---------------------------------------------

// BenchmarkHashJoin measures the hash-join operator.
func BenchmarkHashJoin(b *testing.B) {
	l, r := joinInputs(5000, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := exec.HashJoin(l, r, []int{0}, []int{0})
		_ = out
	}
}

// BenchmarkMergeJoin measures the merge-join operator on sorted inputs.
func BenchmarkMergeJoin(b *testing.B) {
	l, r := joinInputs(5000, 500)
	ls, _ := exec.Sort(l, []int{0})
	rs, _ := exec.Sort(r, []int{0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := exec.MergeJoin(ls, rs, []int{0}, []int{0})
		_ = out
	}
}

// BenchmarkHashAggregate measures grouped aggregation.
func BenchmarkHashAggregate(b *testing.B) {
	l, _ := joinInputs(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := exec.HashAggregate(l, []int{1}, []exec.AggSpec{{Func: exec.AggSum, Col: 0}})
		_ = out
	}
}

func joinInputs(nl, nr int) (exec.Rel, exec.Rel) {
	l := exec.Rel{Cols: []string{"k", "g"}}
	for i := 0; i < nl; i++ {
		l.Tuples = append(l.Tuples, []types.Value{types.NewInt64(int64(i % nr)), types.NewInt64(int64(i % 16))})
	}
	r := exec.Rel{Cols: []string{"k"}}
	for i := 0; i < nr; i++ {
		r.Tuples = append(r.Tuples, []types.Value{types.NewInt64(int64(i))})
	}
	return l, r
}
