package proteus

import (
	"fmt"

	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/storage"
)

// Queryable is anything that can produce a logical query tree: a
// *ScanBuilder mid-chain, or a fully built *query.Query. Session.Query,
// QueryRows and QueryScalar accept either, so chains never need a
// trailing Build call.
type Queryable interface {
	Build() *query.Query
}

// Scan starts a chainable analytical query over the table's named
// columns:
//
//	total, _ := s.QueryScalar(ctx, tbl.Scan("amount").
//	    Where("amount", proteus.Gt, proteus.Float64Value(10)).
//	    Sum("amount"))
//
// Unknown column names panic, matching the schema-error behavior of the
// deprecated free-function builders this replaces.
func (t *Table) Scan(cols ...string) *ScanBuilder {
	ids, err := colIDs(t, cols)
	if err != nil {
		panic(err)
	}
	return &ScanBuilder{
		tbl:  t,
		scan: &query.ScanNode{Table: t.Table.ID, Cols: ids},
	}
}

// ScanBuilder accumulates a query tree over one table (optionally joined
// with another). Every method returns the builder, so calls chain; the
// zero-cost Build finishes the chain, and passing the builder directly to
// Session.Query builds implicitly.
type ScanBuilder struct {
	tbl   *Table
	scan  *query.ScanNode // predicate target (the builder's own leaf)
	root  query.Node      // non-nil once the tree grew past the leaf
	limit int
}

func (b *ScanBuilder) rootNode() query.Node {
	if b.root != nil {
		return b.root
	}
	return b.scan
}

// Build implements Queryable.
func (b *ScanBuilder) Build() *query.Query {
	return &query.Query{Root: b.rootNode(), Limit: b.limit}
}

// Where adds a predicate conjunct (col op value) to the scan leaf.
// Conjuncts are pushed into the storage engine and prune entire
// partitions through their zone maps before any morsel is scheduled.
func (b *ScanBuilder) Where(col string, op storage.CmpOp, v Value) *ScanBuilder {
	cid, ok := b.tbl.ColumnID(col)
	if !ok {
		panic(fmt.Sprintf("proteus: table %s has no column %q", b.tbl.Name, col))
	}
	b.scan.Pred = append(b.scan.Pred, storage.Cond{Col: cid, Op: op, Val: v})
	return b
}

// Limit caps the result at n rows. The executor terminates early —
// closing the morsel feed — once n rows exist.
func (b *ScanBuilder) Limit(n int) *ScanBuilder {
	b.limit = n
	return b
}

// colPos resolves a scanned column name to its output position.
func (b *ScanBuilder) colPos(col string) int {
	cid, ok := b.tbl.ColumnID(col)
	if !ok {
		panic(fmt.Sprintf("proteus: table %s has no column %q", b.tbl.Name, col))
	}
	for i, c := range b.scan.Cols {
		if c == cid {
			return i
		}
	}
	panic(fmt.Sprintf("proteus: column %q not in scan output", col))
}

// agg wraps the current tree in a single ungrouped aggregate.
func (b *ScanBuilder) agg(fn exec.AggFunc, col string) *ScanBuilder {
	pos := -1
	if col != "" {
		pos = b.colPos(col)
	}
	b.root = &query.AggNode{
		Child: b.rootNode(),
		Aggs:  []exec.AggSpec{{Func: fn, Col: pos}},
	}
	return b
}

// Sum aggregates SUM(col); col must be among the scanned columns.
func (b *ScanBuilder) Sum(col string) *ScanBuilder { return b.agg(exec.AggSum, col) }

// Count aggregates COUNT(*).
func (b *ScanBuilder) Count() *ScanBuilder { return b.agg(exec.AggCount, "") }

// Min aggregates MIN(col).
func (b *ScanBuilder) Min(col string) *ScanBuilder { return b.agg(exec.AggMin, col) }

// Max aggregates MAX(col).
func (b *ScanBuilder) Max(col string) *ScanBuilder { return b.agg(exec.AggMax, col) }

// Avg aggregates AVG(col).
func (b *ScanBuilder) Avg(col string) *ScanBuilder { return b.agg(exec.AggAvg, col) }

// Join inner-equi-joins this builder's tree with another table's scan on
// named key columns (each must be among its side's scanned columns). The
// joined output is the concatenation of both sides' columns; GroupBy
// positions index into it.
func (b *ScanBuilder) Join(right *ScanBuilder, leftCol, rightCol string) *ScanBuilder {
	b.root = &query.JoinNode{
		Left:        b.rootNode(),
		Right:       right.rootNode(),
		LeftKeyCol:  b.colPos(leftCol),
		RightKeyCol: right.colPos(rightCol),
	}
	return b
}

// GroupBy wraps the current tree in a grouped aggregation: group
// positions and agg specs index the child's output columns.
func (b *ScanBuilder) GroupBy(groupPositions []int, aggs []AggSpec) *ScanBuilder {
	b.root = &query.AggNode{Child: b.rootNode(), GroupBy: groupPositions, Aggs: aggs}
	return b
}
