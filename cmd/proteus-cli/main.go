// Command proteus-cli is an interactive SQL shell for Proteus. It either
// embeds a cluster in-process (default) or connects to a running proteusd:
//
//	proteus-cli                      # embedded 2-site adaptive cluster
//	proteus-cli -sites 4
//	proteus-cli -connect host:7654   # remote daemon
//
// Supported statements: CREATE TABLE t (col TYPE, ...) [MAXROWS n]
// [PARTITIONS n]; INSERT INTO t VALUES (id, ...); UPDATE t SET c = v WHERE
// id = n; DELETE FROM t WHERE id = n; SELECT with aggregates, WHERE, one
// JOIN and GROUP BY. Meta commands: \layouts, \help, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/rpc"
	"os"
	"strings"

	"proteus/internal/cluster"
	"proteus/internal/server"
)

// executor abstracts local vs remote execution.
type executor interface {
	Exec(sql string) (server.ExecReply, error)
	Layouts() (map[string]int, error)
}

type localExec struct {
	svc  *server.Service
	sess uint64
}

func (l *localExec) Exec(sql string) (server.ExecReply, error) {
	var reply server.ExecReply
	err := l.svc.Exec(&server.ExecArgs{Session: l.sess, SQL: sql}, &reply)
	return reply, err
}

func (l *localExec) Layouts() (map[string]int, error) {
	var reply server.LayoutReply
	err := l.svc.Layouts(&server.LayoutArgs{}, &reply)
	return reply.Counts, err
}

type remoteExec struct {
	c    *rpc.Client
	sess uint64
}

func (r *remoteExec) Exec(sql string) (server.ExecReply, error) {
	var reply server.ExecReply
	err := r.c.Call("Proteus.Exec", &server.ExecArgs{Session: r.sess, SQL: sql}, &reply)
	return reply, err
}

func (r *remoteExec) Layouts() (map[string]int, error) {
	var reply server.LayoutReply
	err := r.c.Call("Proteus.Layouts", &server.LayoutArgs{}, &reply)
	return reply.Counts, err
}

func main() {
	var (
		connect = flag.String("connect", "", "proteusd address (empty = embedded)")
		sites   = flag.Int("sites", 2, "embedded cluster sites")
	)
	flag.Parse()

	var ex executor
	if *connect != "" {
		c, err := rpc.Dial("tcp", *connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var open server.OpenReply
		if err := c.Call("Proteus.OpenSession", &server.OpenArgs{}, &open); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ex = &remoteExec{c: c, sess: open.Session}
		fmt.Printf("connected to %s (session %d)\n", *connect, open.Session)
	} else {
		cfg := cluster.DefaultConfig()
		cfg.NumSites = *sites
		eng := cluster.New(cfg)
		defer eng.Close()
		svc := server.NewService(eng)
		var open server.OpenReply
		_ = svc.OpenSession(&server.OpenArgs{}, &open)
		ex = &localExec{svc: svc, sess: open.Session}
		fmt.Printf("embedded %d-site adaptive cluster ready\n", *sites)
	}

	fmt.Println(`type SQL statements, or \help`)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("proteus> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q` || line == "exit":
			return
		case line == `\help`:
			fmt.Println(`statements: CREATE TABLE / INSERT / UPDATE / DELETE / SELECT
meta: \layouts (storage layout report), \quit`)
		case line == `\layouts`:
			counts, err := ex.Layouts()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for l, n := range counts {
				fmt.Printf("  %-40s %d\n", l, n)
			}
		default:
			reply, err := ex.Exec(line)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printReply(reply)
		}
		fmt.Print("proteus> ")
	}
}

func printReply(r server.ExecReply) {
	if r.Message != "" {
		fmt.Println(r.Message)
		return
	}
	if len(r.Cols) > 0 {
		fmt.Println(strings.Join(r.Cols, "\t"))
	}
	for _, row := range r.Rows {
		fmt.Println(strings.Join(row, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(r.Rows))
}
