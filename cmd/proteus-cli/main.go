// Command proteus-cli is an interactive SQL shell for Proteus. It either
// embeds a cluster in-process (default) or connects to a running proteusd:
//
//	proteus-cli                      # embedded 2-site adaptive cluster
//	proteus-cli -sites 4
//	proteus-cli -connect host:7654   # remote daemon
//
// Supported statements: CREATE TABLE t (col TYPE, ...) [MAXROWS n]
// [PARTITIONS n]; INSERT INTO t VALUES (id, ...); UPDATE t SET c = v WHERE
// id = n; DELETE FROM t WHERE id = n; SELECT with aggregates, WHERE, one
// JOIN and GROUP BY. Meta commands: \layouts, \stats, \trace [n], \crash N,
// \recover N, \partition 0,1|2,3, \heal, \faults, \help, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/rpc"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/obs"
	"proteus/internal/server"
)

// executor abstracts local vs remote execution.
type executor interface {
	Exec(sql string) (server.ExecReply, error)
	Layouts() (map[string]int, error)
	Stats(traceLimit int) (server.StatsReply, error)
	Fault(args server.FaultArgs) (server.FaultReply, error)
}

type localExec struct {
	svc  *server.Service
	sess uint64
}

func (l *localExec) Exec(sql string) (server.ExecReply, error) {
	var reply server.ExecReply
	err := l.svc.Exec(&server.ExecArgs{Session: l.sess, SQL: sql}, &reply)
	return reply, err
}

func (l *localExec) Layouts() (map[string]int, error) {
	var reply server.LayoutReply
	err := l.svc.Layouts(&server.LayoutArgs{}, &reply)
	return reply.Counts, err
}

func (l *localExec) Stats(traceLimit int) (server.StatsReply, error) {
	var reply server.StatsReply
	err := l.svc.Stats(&server.StatsArgs{TraceLimit: traceLimit}, &reply)
	return reply, err
}

func (l *localExec) Fault(args server.FaultArgs) (server.FaultReply, error) {
	var reply server.FaultReply
	err := l.svc.Fault(&args, &reply)
	return reply, err
}

type remoteExec struct {
	c    *rpc.Client
	sess uint64
}

func (r *remoteExec) Exec(sql string) (server.ExecReply, error) {
	var reply server.ExecReply
	err := r.c.Call("Proteus.Exec", &server.ExecArgs{Session: r.sess, SQL: sql}, &reply)
	return reply, err
}

func (r *remoteExec) Layouts() (map[string]int, error) {
	var reply server.LayoutReply
	err := r.c.Call("Proteus.Layouts", &server.LayoutArgs{}, &reply)
	return reply.Counts, err
}

func (r *remoteExec) Stats(traceLimit int) (server.StatsReply, error) {
	var reply server.StatsReply
	err := r.c.Call("Proteus.Stats", &server.StatsArgs{TraceLimit: traceLimit}, &reply)
	return reply, err
}

func (r *remoteExec) Fault(args server.FaultArgs) (server.FaultReply, error) {
	var reply server.FaultReply
	err := r.c.Call("Proteus.Fault", &args, &reply)
	return reply, err
}

func main() {
	var (
		connect = flag.String("connect", "", "proteusd address (empty = embedded)")
		sites   = flag.Int("sites", 2, "embedded cluster sites")
	)
	flag.Parse()

	var ex executor
	if *connect != "" {
		c, err := rpc.Dial("tcp", *connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var open server.OpenReply
		if err := c.Call("Proteus.OpenSession", &server.OpenArgs{}, &open); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ex = &remoteExec{c: c, sess: open.Session}
		fmt.Printf("connected to %s (session %d)\n", *connect, open.Session)
	} else {
		cfg := cluster.DefaultConfig()
		cfg.NumSites = *sites
		eng := cluster.New(cfg)
		defer eng.Close()
		svc := server.NewService(eng)
		var open server.OpenReply
		_ = svc.OpenSession(&server.OpenArgs{}, &open)
		ex = &localExec{svc: svc, sess: open.Session}
		fmt.Printf("embedded %d-site adaptive cluster ready\n", *sites)
	}

	fmt.Println(`type SQL statements, or \help`)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("proteus> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q` || line == "exit":
			return
		case line == `\help`:
			fmt.Println(`statements: CREATE TABLE / INSERT / UPDATE / DELETE / SELECT
meta: \layouts (storage layout report), \stats (metrics snapshot),
      \trace [n] (recent ASA decisions), \quit
faults: \crash N (fail site N), \recover N (bring it back),
        \partition 0,1|2,3 (split interconnect into groups),
        \heal (remove partitions), \faults (current fault state)`)
		case line == `\stats`:
			reply, err := ex.Stats(0)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printStats(reply.Metrics)
		case line == `\trace` || strings.HasPrefix(line, `\trace `):
			n := 20
			if rest := strings.TrimSpace(strings.TrimPrefix(line, `\trace`)); rest != "" {
				if v, err := strconv.Atoi(rest); err == nil {
					n = v
				}
			}
			reply, err := ex.Stats(n)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printTrace(reply.Trace)
		case strings.HasPrefix(line, `\crash`) || strings.HasPrefix(line, `\recover`):
			cmd := "crash"
			rest := strings.TrimSpace(strings.TrimPrefix(line, `\crash`))
			if strings.HasPrefix(line, `\recover`) {
				cmd = "recover"
				rest = strings.TrimSpace(strings.TrimPrefix(line, `\recover`))
			}
			n, err := strconv.Atoi(rest)
			if err != nil {
				fmt.Printf("usage: \\%s N\n", cmd)
				break
			}
			printFault(ex.Fault(server.FaultArgs{Cmd: cmd, Site: n}))
		case strings.HasPrefix(line, `\partition`):
			rest := strings.TrimSpace(strings.TrimPrefix(line, `\partition`))
			groups, err := parseGroups(rest)
			if err != nil {
				fmt.Println("usage: \\partition 0,1|2,3 —", err)
				break
			}
			printFault(ex.Fault(server.FaultArgs{Cmd: "partition", Groups: groups}))
		case line == `\heal`:
			printFault(ex.Fault(server.FaultArgs{Cmd: "heal"}))
		case line == `\faults`:
			printFault(ex.Fault(server.FaultArgs{Cmd: "status"}))
		case line == `\layouts`:
			counts, err := ex.Layouts()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for l, n := range counts {
				fmt.Printf("  %-40s %d\n", l, n)
			}
		default:
			reply, err := ex.Exec(line)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printReply(reply)
		}
		fmt.Print("proteus> ")
	}
}

// printStats renders a metrics snapshot: the admission/QoS block first,
// then counters and gauges, then each latency window with count, average
// and quantiles.
func printStats(s obs.Snapshot) {
	printAdmission(s)
	section := func(title string, vals map[string]int64) {
		rest := make(map[string]int64, len(vals))
		for name, v := range vals {
			if !strings.HasPrefix(name, "admission.") {
				rest[name] = v
			}
		}
		if len(rest) == 0 {
			return
		}
		fmt.Println(title + ":")
		names := make([]string, 0, len(rest))
		for name := range rest {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-36s %d\n", name, rest[name])
		}
	}
	section("counters", s.Counters)
	section("gauges", s.Gauges)
	names := make([]string, 0, len(s.Latencies))
	for name := range s.Latencies {
		if !strings.HasPrefix(name, "admission.") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	fmt.Println("latencies:")
	sort.Strings(names)
	for _, name := range names {
		l := s.Latencies[name]
		fmt.Printf("  %-36s n=%-8d avg=%-10v p50=%-10v p95=%-10v p99=%v\n",
			name, l.Count, l.Avg, l.P50, l.P95, l.P99)
	}
}

// printAdmission renders the QoS front-end block: policy, queue depths,
// global admit/shed/queue counters with wait quantiles, then one line per
// tenant (bucket fill is the admission.tenant.<t>.tokens_milli gauge).
func printAdmission(s obs.Snapshot) {
	if _, ok := s.Gauges["admission.policy"]; !ok {
		return
	}
	policy := "always_admit"
	if s.Gauges["admission.policy"] == 1 {
		policy = "token_bucket"
	}
	fmt.Printf("admission: policy=%s queued oltp=%d olap=%d commit_backlog=%d\n",
		policy, s.Gauges["admission.queue.oltp"], s.Gauges["admission.queue.olap"],
		s.Gauges["admission.commit_backlog"])
	fmt.Printf("  %-22s admitted=%-8d shed=%-8d queued=%-8d",
		"total", s.Counters["admission.admitted"], s.Counters["admission.shed"],
		s.Counters["admission.queued"])
	if l, ok := s.Latencies["admission.wait"]; ok && l.Count > 0 {
		fmt.Printf(" wait p50=%v p99=%v", l.P50, l.P99)
	}
	fmt.Println()
	var tenants []string
	for name := range s.Counters {
		if rest, ok := strings.CutPrefix(name, "admission.tenant."); ok {
			if t, ok := strings.CutSuffix(rest, ".admitted"); ok {
				tenants = append(tenants, t)
			}
		}
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		pre := "admission.tenant." + t
		fmt.Printf("  tenant %-15s admitted=%-8d shed=%-8d queued=%-8d tokens=%dm",
			t, s.Counters[pre+".admitted"], s.Counters[pre+".shed"],
			s.Counters[pre+".queued"], s.Gauges[pre+".tokens_milli"])
		if l, ok := s.Latencies[pre+".wait"]; ok && l.Count > 0 {
			fmt.Printf(" wait p50=%v p99=%v", l.P50, l.P99)
		}
		fmt.Println()
	}
}

// printTrace renders recent ASA decisions, oldest first.
func printTrace(ds []obs.Decision) {
	if len(ds) == 0 {
		fmt.Println("(no decisions)")
		return
	}
	for _, d := range ds {
		status := "ok"
		if !d.Executed {
			status = "failed: " + d.Err
		}
		fmt.Printf("  #%-5d %s p%-5d %-10s %-10s -> %-28s net=%-8.0f plan=%-10v exec=%-10v %s\n",
			d.Seq, d.At.Format(time.TimeOnly), d.Partition, d.Trigger, d.Kind,
			d.Layout, d.Net, d.PlanTime, d.ExecTime, status)
	}
}

// parseGroups parses "0,1|2,3" into site groups.
func parseGroups(s string) ([][]int, error) {
	if s == "" {
		return nil, fmt.Errorf("no groups")
	}
	var groups [][]int
	for _, part := range strings.Split(s, "|") {
		var g []int
		for _, tok := range strings.Split(part, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("bad site %q", tok)
			}
			g = append(g, n)
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("need at least two groups")
	}
	return groups, nil
}

// printFault renders a fault command's outcome and the fault state.
func printFault(r server.FaultReply, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(r.Message)
	if len(r.Down) > 0 {
		fmt.Printf("  down sites: %v\n", r.Down)
	} else {
		fmt.Println("  down sites: none")
	}
	fmt.Printf("  network partitioned: %v\n", r.Partitioned)
}

func printReply(r server.ExecReply) {
	if r.Message != "" {
		fmt.Println(r.Message)
		return
	}
	if len(r.Cols) > 0 {
		fmt.Println(strings.Join(r.Cols, "\t"))
	}
	for _, row := range r.Rows {
		fmt.Println(strings.Join(row, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(r.Rows))
}
