// Command proteus-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	proteus-bench -list
//	proteus-bench -exp fig8a [-scale quick|full]
//	proteus-bench -exp all   [-scale quick|full]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"proteus/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale = flag.String("scale", "quick", "experiment scale: quick or full")
		list  = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	s := experiments.Quick
	if *scale == "full" {
		s = experiments.Full
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		if err := e.Run(os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All {
			run(e)
		}
		return
	}
	e, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
