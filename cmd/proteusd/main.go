// Command proteusd hosts a Proteus cluster as a network service: clients
// connect over TCP (net/rpc with gob encoding, this repository's stand-in
// for the paper's Thrift layer) and submit SQL statements with
// per-connection sessions under strong session snapshot isolation.
//
//	proteusd -listen :7654 -sites 3 -mode proteus -metrics :7655
//
// Connect with: proteus-cli -connect localhost:7654. The -metrics address
// serves /metrics (plain text), /metrics.json, /trace?n=100 (recent ASA
// decisions) and /debug/vars (expvar).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"proteus/internal/cluster"
	"proteus/internal/obs"
	"proteus/internal/server"
)

func main() {
	var (
		listen  = flag.String("listen", ":7654", "address to listen on")
		sites   = flag.Int("sites", 2, "data sites")
		mode    = flag.String("mode", "proteus", "architecture: proteus|rowstore|columnstore|janus|tidb")
		metrics = flag.String("metrics", "", "metrics HTTP address (empty = disabled), e.g. :7655")
	)
	flag.Parse()

	modes := map[string]cluster.Mode{
		"proteus": cluster.ModeProteus, "rowstore": cluster.ModeRowStore,
		"columnstore": cluster.ModeColumnStore, "janus": cluster.ModeJanus,
		"tidb": cluster.ModeTiDB,
	}
	m, ok := modes[*mode]
	if !ok {
		log.Fatalf("unknown mode %q", *mode)
	}

	cfg := cluster.DefaultConfig()
	cfg.Mode = m
	cfg.NumSites = *sites
	eng := cluster.New(cfg)
	defer eng.Close()

	svc := server.NewService(eng)
	ln, err := server.Serve(svc, *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("proteusd: %d sites, mode=%s, listening on %s\n", *sites, m, ln.Addr())

	if *metrics != "" {
		obs.PublishExpvar("proteus", eng.MetricsSnapshot)
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer mln.Close()
		go func() {
			_ = http.Serve(mln, obs.Handler(eng.MetricsSnapshot, eng.Trace))
		}()
		fmt.Printf("proteusd: metrics on http://%s/metrics\n", mln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
}
