// Command proteus-sim replays declarative cluster scenarios against the
// real engine on a virtual clock. A scenario JSON names the cluster
// shape, workload mix, tenants, fault schedule and invariants; the
// runner executes it and asserts the invariant block, so hours of
// simulated traffic regression-test the whole stack in seconds of wall
// time.
//
// Usage:
//
//	proteus-sim run [-wall] [-v] [-json] scenario.json...
//	proteus-sim validate scenario.json...
//
// run exits 0 only if every scenario upholds its invariants; validate
// just parses and defaults the specs.
package main

import (
	"flag"
	"fmt"
	"os"

	"proteus/internal/scenario"
	"proteus/internal/vclock"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  proteus-sim run [-wall] [-v] [-json] scenario.json...
  proteus-sim validate scenario.json...

run flags:
  -wall   replay on the wall clock instead of the virtual clock
  -v      verbose progress (faults applied, convergence, per-row losses)
  -json   print each scenario's canonical report as JSON
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		os.Exit(runCmd(os.Args[2:]))
	case "validate":
		os.Exit(validateCmd(os.Args[2:]))
	default:
		usage()
	}
}

func validateCmd(args []string) int {
	if len(args) == 0 {
		usage()
	}
	code := 0
	for _, path := range args {
		spec, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s: ok (scenario %q, %d sites, %d clients)\n", path, spec.Name, spec.Sites, spec.Clients)
	}
	return code
}

func runCmd(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	wall := fs.Bool("wall", false, "replay on the wall clock")
	verbose := fs.Bool("v", false, "verbose progress")
	jsonOut := fs.Bool("json", false, "print canonical reports as JSON")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}

	failed := 0
	for _, path := range fs.Args() {
		spec, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		opt := scenario.Options{}
		if *verbose {
			opt.Logf = func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, "# %s: %s\n", spec.Name, fmt.Sprintf(format, a...))
			}
		}
		var sim *vclock.Sim
		if !*wall {
			sim = vclock.NewSim(vclock.SimConfig{})
			opt.Clock = sim
		}
		rep, err := scenario.Run(spec, opt)
		if sim != nil {
			sim.Stop()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Println(rep.Summary())
		for _, v := range rep.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		if *jsonOut {
			os.Stdout.Write(rep.Canonical.CanonicalJSON())
		}
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "proteus-sim: %d scenario(s) failed\n", failed)
		return 1
	}
	return 0
}
