.PHONY: build test check bench chaos sim

build:
	go build ./...

test:
	go test ./...

# chaos runs the seeded kill/partition/restore harness under the race
# detector: >=3 site crashes and >=1 network partition against an active
# mixed workload, asserting zero committed-write loss and convergence.
# TestChaosSimClock replays the same schedule on the simulated clock, so
# this covers both clock implementations.
chaos:
	go test -race -count=1 -v -run TestChaos ./internal/cluster/

# sim replays the whole scenarios/ corpus on the virtual clock: hours of
# simulated mixed traffic, diurnal shifts, partitions, overload and crash
# failover in under a minute of wall clock, asserting zero acked-write
# loss, replica convergence and the per-scenario bounds.
sim:
	go run ./cmd/proteus-sim run scenarios/*.json

# check is the CI pipeline: vet + build + tests + race detector over the
# concurrency-heavy packages.
check:
	./scripts/ci.sh

# bench runs the scan benchmarks, the row-vs-batch kernel benchmarks and
# the join/group-by A/B benchmarks with allocation stats, archiving the
# run under results/.
bench:
	mkdir -p results
	go test -run XXX -bench 'BenchmarkScan' -benchmem . | tee results/bench-$$(date +%Y-%m-%d).txt
	go test -run XXX -bench 'BenchmarkBatchKernels' -benchmem ./internal/exec/ | tee -a results/bench-$$(date +%Y-%m-%d).txt
	go test -run XXX -bench 'BenchmarkJoin|BenchmarkGroupBy' -benchmem ./internal/exec/ | tee -a results/bench-$$(date +%Y-%m-%d).txt
