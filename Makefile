.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

# check is the CI pipeline: vet + build + tests + race detector over the
# concurrency-heavy packages.
check:
	./scripts/ci.sh

bench:
	go test -bench . -benchtime 100x .
