// Social: a Twitter-style application (§6.3.4) — a heavily skewed
// many-to-many graph where inserting new tweets dominates the OLTP load
// while timeline joins, time-range counts and per-user aggregations run
// as analytics. Demonstrates join queries across the many-to-many schema
// and how Proteus keeps the hot insert tail in rows while history becomes
// columnar.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"proteus"
)

func main() {
	ctx := context.Background()
	db, err := proteus.Open(proteus.Options{Sites: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const users = 200
	tweets, err := db.CreateTable("tweets", []proteus.Column{
		{Name: "tid", Kind: proteus.Int64},
		{Name: "uid", Kind: proteus.Int64},
		{Name: "text", Kind: proteus.String, AvgSize: 20},
		{Name: "ts", Kind: proteus.Time},
	}, proteus.TableOptions{MaxRows: 6000, Partitions: 6})
	if err != nil {
		log.Fatal(err)
	}
	follows, err := db.CreateTable("follows", []proteus.Column{
		{Name: "follower", Kind: proteus.Int64},
		{Name: "followee", Kind: proteus.Int64},
	}, proteus.TableOptions{MaxRows: users * 32, Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, 1.4, 1, users-1)

	// Load the follow graph: popular users accumulate followers.
	var rows []proteus.Row
	slot := make([]int64, users)
	for u := int64(0); u < users; u++ {
		for k := 0; k < 10; k++ {
			followee := int64(zipf.Uint64())
			rows = append(rows, proteus.Row{ID: proteus.RowID(u*32 + slot[u]), Values: []proteus.Value{
				proteus.Int64Value(u), proteus.Int64Value(followee),
			}})
			slot[u]++
		}
	}
	if err := db.Load(ctx, follows, rows); err != nil {
		log.Fatal(err)
	}

	s := db.Session()
	epoch := time.Now()
	next := int64(0)
	postTweet := func() {
		u := int64(zipf.Uint64())
		id := next
		next++
		if err := s.Insert(ctx, tweets, proteus.RowID(id),
			proteus.Int64Value(id), proteus.Int64Value(u),
			proteus.StringValue(fmt.Sprintf("tweet %d from user %d", id, u)),
			proteus.TimeValue(time.Now())); err != nil {
			log.Fatal(err)
		}
	}

	timeline := func(u int64) int64 {
		// Tweets from users u follows: follows ⋈ tweets on followee=uid.
		q := follows.Scan("followee").
			Where("follower", proteus.Eq, proteus.Int64Value(u)).
			Join(tweets.Scan("uid", "tid"), "followee", "uid").
			GroupBy(nil, []proteus.AggSpec{{Func: proteus.AggCount}})
		res, err := s.Query(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		return res.Row(0)[0].Int()
	}

	fmt.Println("posting tweets and reading timelines...")
	for round := 0; round < 4; round++ {
		for i := 0; i < 300; i++ {
			postTweet()
		}
		u := int64(rng.Intn(users))
		n := timeline(u)

		// Tweets in the last window.
		recent, err := s.QueryScalar(ctx, tweets.Scan("tid", "ts").
			Where("ts", proteus.Ge, proteus.TimeValue(epoch)).
			Count())
		if err != nil {
			log.Fatal(err)
		}

		// Most prolific author so far.
		res, err := s.Query(ctx, tweets.Scan("uid").GroupBy(
			[]int{0},
			[]proteus.AggSpec{{Func: proteus.AggCount}},
		))
		if err != nil {
			log.Fatal(err)
		}
		var topUser, topN int64
		for i := 0; i < res.NumRows(); i++ {
			if c := res.Row(i)[1].Int(); c > topN {
				topN, topUser = c, res.Row(i)[0].Int()
			}
		}
		fmt.Printf("round %d: user %d timeline=%d tweets, %v total, top author %d (%d tweets)\n",
			round, u, n, recent.Int(), topUser, topN)
	}
	fmt.Printf("layouts: %v\n", db.LayoutReport())
}
