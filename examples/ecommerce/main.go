// E-commerce: the paper's motivating scenario (§1) — an organization that
// processes new online orders while continuously analyzing them. An
// orderline fact table receives a stream of NewOrder-style inserts and
// Delivery-style updates while TPC-H Query 6 / Query 14 style analytics
// run concurrently, joining against a replicated read-only item table.
// Watch the adaptive storage advisor move historical data to columns while
// keeping the write-hot tail in rows.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"proteus"
)

func main() {
	ctx := context.Background()
	db, err := proteus.Open(proteus.Options{Sites: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	orderline, err := db.CreateTable("orderline", []proteus.Column{
		{Name: "order_id", Kind: proteus.Int64},
		{Name: "item_id", Kind: proteus.Int64},
		{Name: "quantity", Kind: proteus.Float64},
		{Name: "amount", Kind: proteus.Float64},
		{Name: "delivery", Kind: proteus.Time},
	}, proteus.TableOptions{MaxRows: 40000, Partitions: 8})
	if err != nil {
		log.Fatal(err)
	}
	item, err := db.CreateTable("item", []proteus.Column{
		{Name: "i_id", Kind: proteus.Int64},
		{Name: "i_price", Kind: proteus.Float64},
		{Name: "i_data", Kind: proteus.String, AvgSize: 20},
	}, proteus.TableOptions{MaxRows: 512, Partitions: 1, ReplicateAll: true})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	const items = 300
	var rows []proteus.Row
	for i := int64(0); i < items; i++ {
		data := "standard"
		if i%10 == 0 {
			data = "PR-promo" // promotional items (Query 14)
		}
		rows = append(rows, proteus.Row{ID: proteus.RowID(i), Values: []proteus.Value{
			proteus.Int64Value(i),
			proteus.Float64Value(1 + float64(rng.Intn(5000))/100),
			proteus.StringValue(data),
		}})
	}
	if err := db.Load(ctx, item, rows); err != nil {
		log.Fatal(err)
	}

	// Historical orderlines.
	base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	rows = rows[:0]
	for i := int64(0); i < 3000; i++ {
		rows = append(rows, proteus.Row{ID: proteus.RowID(i), Values: []proteus.Value{
			proteus.Int64Value(i / 3),
			proteus.Int64Value(int64(rng.Intn(items))),
			proteus.Float64Value(float64(1 + rng.Intn(10))),
			proteus.Float64Value(float64(1+rng.Intn(9999)) / 100),
			proteus.TimeValue(base.AddDate(0, 0, int(i/30))),
		}})
	}
	if err := db.Load(ctx, orderline, rows); err != nil {
		log.Fatal(err)
	}

	s := db.Session()
	next := int64(3000)

	q6 := func() float64 { // Figure 2b
		sum, err := s.QueryScalar(ctx, orderline.Scan("amount", "delivery", "quantity").
			Where("delivery", proteus.Ge, proteus.TimeValue(base)).
			Where("quantity", proteus.Ge, proteus.Float64Value(1)).
			Sum("amount"))
		if err != nil {
			log.Fatal(err)
		}
		return sum.Float()
	}
	q14 := func() int64 { // Figure 5a: join with promotional items
		promo := item.Scan("i_id").
			Where("i_data", proteus.Ge, proteus.StringValue("PR")).
			Where("i_data", proteus.Lt, proteus.StringValue("PS"))
		q := orderline.Scan("item_id", "amount").
			Join(promo, "item_id", "i_id").
			GroupBy(nil, []proteus.AggSpec{{Func: proteus.AggCount}})
		res, err := s.Query(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		return res.Row(0)[0].Int()
	}

	fmt.Println("running mixed workload: NewOrder/Delivery inserts + Q6/Q14 analytics")
	for round := 0; round < 5; round++ {
		// OLTP burst: new orders plus delivery updates to recent lines.
		for i := 0; i < 200; i++ {
			id := next
			next++
			if err := s.Insert(ctx, orderline, proteus.RowID(id),
				proteus.Int64Value(id/3),
				proteus.Int64Value(int64(rng.Intn(items))),
				proteus.Float64Value(float64(1+rng.Intn(10))),
				proteus.Float64Value(float64(1+rng.Intn(9999))/100),
				proteus.TimeValue(time.Now())); err != nil {
				log.Fatal(err)
			}
			// Delivery transaction (Figure 5b) on a recent order.
			recent := next - 1 - int64(rng.Intn(100))
			if err := s.Update(ctx, orderline, proteus.RowID(recent), map[string]proteus.Value{
				"delivery": proteus.TimeValue(time.Now()),
			}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("round %d: revenue(Q6)=%.2f promo-lines(Q14)=%d layouts=%v\n",
			round, q6(), q14(), db.LayoutReport())
	}
}
