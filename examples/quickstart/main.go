// Quickstart: open a Proteus cluster, create a table, run transactions and
// analytical queries through the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"proteus"
)

func main() {
	ctx := context.Background()
	db, err := proteus.Open(proteus.Options{Sites: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	orders, err := db.CreateTable("orders", []proteus.Column{
		{Name: "id", Kind: proteus.Int64},
		{Name: "customer", Kind: proteus.Int64},
		{Name: "amount", Kind: proteus.Float64},
		{Name: "note", Kind: proteus.String, AvgSize: 12},
	}, proteus.TableOptions{MaxRows: 8192, Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Bulk-load some history.
	var rows []proteus.Row
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, proteus.Row{ID: proteus.RowID(i), Values: []proteus.Value{
			proteus.Int64Value(i),
			proteus.Int64Value(i % 50),
			proteus.Float64Value(float64(i%200) + 0.99),
			proteus.StringValue("loaded"),
		}})
	}
	if err := db.Load(ctx, orders, rows); err != nil {
		log.Fatal(err)
	}

	s := db.Session()

	// OLTP: insert a new order and update it, reading our own writes.
	if err := s.Insert(ctx, orders, 5000,
		proteus.Int64Value(5000), proteus.Int64Value(7),
		proteus.Float64Value(129.99), proteus.StringValue("new")); err != nil {
		log.Fatal(err)
	}
	if err := s.Update(ctx, orders, 5000, map[string]proteus.Value{
		"amount": proteus.Float64Value(99.99),
	}); err != nil {
		log.Fatal(err)
	}
	vals, ok, err := s.Get(ctx, orders, 5000, "amount", "note")
	if err != nil || !ok {
		log.Fatalf("get: %v %v", ok, err)
	}
	fmt.Printf("order 5000: amount=%v note=%v\n", vals[0], vals[1])

	// OLAP: total revenue over orders above 100.
	sum, err := s.QueryScalar(ctx, orders.Scan("amount").
		Where("amount", proteus.Ge, proteus.Float64Value(100)).
		Sum("amount"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue from orders >= 100: %.2f\n", sum.Float())

	// Group revenue by customer (first 3 groups shown).
	res, err := s.Query(ctx, orders.Scan("customer", "amount").GroupBy(
		[]int{0},
		[]proteus.AggSpec{{Func: proteus.AggCount}, {Func: proteus.AggSum, Col: 1}},
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customers: %d; first groups:\n", res.NumRows())
	for i := 0; i < 3 && i < res.NumRows(); i++ {
		r := res.Row(i)
		fmt.Printf("  customer %v: %v orders, %.2f total\n", r[0], r[1], r[2].Float())
	}

	fmt.Printf("storage layouts in use: %v\n", db.LayoutReport())
}
