// Adaptive: watch the adaptive storage advisor at work (§2.2, §5). The
// same table serves three workload phases — update-heavy, scan-heavy, and
// mixed — and after each phase the program prints the layout distribution
// the ASA chose, its cumulative layout-change count, and the cost model's
// accuracy. Compare with a static engine (RowStore mode) that cannot
// adapt.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"proteus"
	"proteus/internal/cluster"
)

func workload(db *proteus.DB, tbl *proteus.Table, updates, scans int) time.Duration {
	s := db.Session()
	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	for i := 0; i < updates; i++ {
		row := proteus.RowID(rng.Intn(500)) // hot head
		if err := s.Update(context.Background(), tbl, row, map[string]proteus.Value{
			"v": proteus.Float64Value(rng.Float64()),
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < scans; i++ {
		if _, err := s.QueryScalar(context.Background(), tbl.Scan("v").Sum("v")); err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start)
}

func build(mode proteus.Mode) (*proteus.DB, *proteus.Table) {
	db, err := proteus.Open(proteus.Options{Sites: 2, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := db.CreateTable("data", []proteus.Column{
		{Name: "k", Kind: proteus.Int64},
		{Name: "v", Kind: proteus.Float64},
		{Name: "payload", Kind: proteus.String, AvgSize: 32},
	}, proteus.TableOptions{MaxRows: 4096, Partitions: 8})
	if err != nil {
		log.Fatal(err)
	}
	var rows []proteus.Row
	for i := int64(0); i < 4000; i++ {
		rows = append(rows, proteus.Row{ID: proteus.RowID(i), Values: []proteus.Value{
			proteus.Int64Value(i), proteus.Float64Value(float64(i)),
			proteus.StringValue("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
		}})
	}
	if err := db.Load(context.Background(), tbl, rows); err != nil {
		log.Fatal(err)
	}
	return db, tbl
}

func main() {
	adaptive, atbl := build(proteus.Adaptive)
	defer adaptive.Close()
	static, stbl := build(proteus.RowStore)
	defer static.Close()

	phases := []struct {
		name           string
		updates, scans int
	}{
		{"update-heavy", 1500, 5},
		{"scan-heavy", 50, 120},
		{"mixed", 600, 60},
	}
	for _, ph := range phases {
		da := workload(adaptive, atbl, ph.updates, ph.scans)
		ds := workload(static, stbl, ph.updates, ph.scans)
		fmt.Printf("phase %-13s adaptive=%-10v static-rows=%-10v\n", ph.name, da.Round(time.Millisecond), ds.Round(time.Millisecond))
		fmt.Printf("  adaptive layouts: %v\n", adaptive.LayoutReport())
		if adv := adaptive.Engine().Advisor; adv != nil {
			fmt.Printf("  layout changes so far: %d\n", adv.Changes())
		}
	}

	fmt.Println("\ncost model relative RMSE (adaptive engine):")
	for op, rmse := range adaptive.Engine().Model.Accuracy() {
		fmt.Printf("  %-10v %5.0f%%\n", op, rmse*100)
	}

	// Stats accounting (Table 4 flavor).
	st := adaptive.Engine().Stats()
	for _, c := range []cluster.OpClass{
		cluster.ClassOLTP, cluster.ClassOLAP,
		cluster.ClassFormatChange, cluster.ClassPartitionChange, cluster.ClassReplicationChange,
	} {
		cs := st.Class(c)
		fmt.Printf("%-20v count=%-6d avg=%v\n", c, cs.Count, cs.Avg().Round(time.Microsecond))
	}
}
