// Package proteus is the public API of this reproduction of "Proteus:
// Autonomous Adaptive Storage for Mixed Workloads" (SIGMOD 2022): a
// distributed HTAP database engine that adaptively and autonomously
// selects per-partition storage layouts — row or column format, memory or
// disk tier, sort orders, compression, replication and mastership — from
// learned workload and cost models.
//
// A DB embeds a full simulated cluster: data sites with isolated OLTP and
// OLAP worker pools, a redo-log broker, an interconnect model, and the
// adaptive storage advisor. Clients open sessions (strong session snapshot
// isolation) and submit keyed transactions or analytical query trees:
//
//	db, _ := proteus.Open(proteus.Options{Sites: 3})
//	defer db.Close()
//
//	tbl, _ := db.CreateTable("orders", []proteus.Column{
//	    {Name: "id", Kind: proteus.Int64},
//	    {Name: "amount", Kind: proteus.Float64},
//	}, proteus.TableOptions{MaxRows: 1 << 20})
//
//	s := db.Session()
//	_ = s.Insert(tbl, 1, proteus.Int64Value(1), proteus.Float64Value(9.99))
//	sum, _ := s.QueryScalar(proteus.Sum(proteus.Scan(tbl, "amount"), "amount"))
//
// See the examples/ directory for complete programs and internal/
// experiments for the paper's evaluation suite.
package proteus

import (
	"fmt"

	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Kind aliases the value kinds.
type Kind = types.Kind

// Column kinds.
const (
	Int64   = types.KindInt64
	Float64 = types.KindFloat64
	String  = types.KindString
	Time    = types.KindTime
	Bool    = types.KindBool
)

// Value aliases the cell value type.
type Value = types.Value

// Value constructors.
var (
	Int64Value   = types.NewInt64
	Float64Value = types.NewFloat64
	StringValue  = types.NewString
	TimeValue    = types.NewTime
	BoolValue    = types.NewBool
)

// Column aliases the schema column definition.
type Column = schema.Column

// Table aliases the table handle.
type Table = schema.Table

// RowID aliases the primary-key type.
type RowID = schema.RowID

// Mode selects the storage architecture; the default is the adaptive
// Proteus mode. Baseline architectures from the paper's evaluation are
// available for comparison.
type Mode = cluster.Mode

// Architecture modes.
const (
	Adaptive    = cluster.ModeProteus
	RowStore    = cluster.ModeRowStore
	ColumnStore = cluster.ModeColumnStore
	Janus       = cluster.ModeJanus
	TiDBLike    = cluster.ModeTiDB
)

// Options configures a DB.
type Options struct {
	// Sites is the data-site count (default 2).
	Sites int
	// Mode selects the architecture (default Adaptive).
	Mode Mode
	// Cluster, when non-nil, overrides every knob (advanced use).
	Cluster *cluster.Config
}

// DB is an open Proteus cluster.
type DB struct {
	eng *cluster.Engine
}

// Open starts a cluster.
func Open(o Options) (*DB, error) {
	cfg := cluster.DefaultConfig()
	if o.Cluster != nil {
		cfg = *o.Cluster
	} else {
		if o.Sites > 0 {
			cfg.NumSites = o.Sites
		}
		cfg.Mode = o.Mode
	}
	return &DB{eng: cluster.New(cfg)}, nil
}

// Close shuts the cluster down.
func (db *DB) Close() { db.eng.Close() }

// Engine exposes the underlying cluster for advanced use (experiments,
// layout inspection).
func (db *DB) Engine() *cluster.Engine { return db.eng }

// TableOptions refines table creation.
type TableOptions struct {
	// MaxRows bounds the row-id space (default 1<<30).
	MaxRows RowID
	// Partitions is the initial horizontal partition count (default one
	// per site).
	Partitions int
	// ReplicateAll installs a replica at every site (read-only tables).
	ReplicateAll bool
}

// CreateTable defines a table.
func (db *DB) CreateTable(name string, cols []Column, opts TableOptions) (*Table, error) {
	parts := opts.Partitions
	if parts <= 0 {
		parts = len(db.eng.Sites)
	}
	return db.eng.CreateTable(cluster.TableSpec{
		Name: name, Cols: cols, MaxRows: opts.MaxRows,
		Partitions: parts, ReplicateAll: opts.ReplicateAll,
	})
}

// Load bulk-loads rows (id, values...) into a table.
func (db *DB) Load(tbl *Table, rows []Row) error {
	out := make([]schema.Row, len(rows))
	for i, r := range rows {
		out[i] = schema.Row{ID: r.ID, Vals: r.Values}
	}
	return db.eng.LoadRows(tbl.ID, out)
}

// Row is one tuple for bulk loading.
type Row struct {
	ID     RowID
	Values []Value
}

// LayoutReport summarizes the cluster's current physical design.
func (db *DB) LayoutReport() map[string]int { return db.eng.LayoutCounts() }

// Session is one client connection with strong session snapshot isolation:
// every transaction observes the effects of the session's previous reads
// and writes.
type Session struct {
	db *DB
	s  *cluster.Session
}

// Session opens a client session.
func (db *DB) Session() *Session {
	return &Session{db: db, s: db.eng.NewSession()}
}

// Exec runs a multi-operation transaction built with the Op helpers.
func (s *Session) Exec(ops ...query.Op) (Result, error) {
	rel, err := s.db.eng.ExecuteTxn(s.s, &query.Txn{Ops: ops})
	return Result{rel: rel}, err
}

// Insert adds one row with values for every column.
func (s *Session) Insert(tbl *Table, id RowID, vals ...Value) error {
	if len(vals) != tbl.NumColumns() {
		return fmt.Errorf("proteus: %d values for %d columns", len(vals), tbl.NumColumns())
	}
	_, err := s.Exec(InsertOp(tbl, id, vals...))
	return err
}

// Update overwrites named columns of one row.
func (s *Session) Update(tbl *Table, id RowID, set map[string]Value) error {
	op, err := UpdateOp(tbl, id, set)
	if err != nil {
		return err
	}
	_, err = s.Exec(op)
	return err
}

// Delete removes one row.
func (s *Session) Delete(tbl *Table, id RowID) error {
	_, err := s.Exec(DeleteOp(tbl, id))
	return err
}

// Get reads named columns of one row; found reports existence.
func (s *Session) Get(tbl *Table, id RowID, cols ...string) ([]Value, bool, error) {
	ids, err := colIDs(tbl, cols)
	if err != nil {
		return nil, false, err
	}
	res, err := s.Exec(query.Op{Kind: query.OpRead, Table: tbl.ID, Row: id, Cols: ids})
	if err != nil {
		return nil, false, err
	}
	if len(res.rel.Tuples) == 0 || res.rel.Tuples[0] == nil {
		return nil, false, nil
	}
	return res.rel.Tuples[0], true, nil
}

// Query executes an analytical query tree.
func (s *Session) Query(q *query.Query) (Result, error) {
	rel, err := s.db.eng.ExecuteQuery(s.s, q)
	return Result{rel: rel}, err
}

// QueryScalar executes a query expected to yield a single value.
func (s *Session) QueryScalar(q *query.Query) (Value, error) {
	res, err := s.Query(q)
	if err != nil {
		return types.Null(), err
	}
	if len(res.rel.Tuples) != 1 || len(res.rel.Tuples[0]) < 1 {
		return types.Null(), fmt.Errorf("proteus: query returned %d rows", len(res.rel.Tuples))
	}
	return res.rel.Tuples[0][0], nil
}

// Result is a materialized query or read result.
type Result struct {
	rel exec.Rel
}

// NumRows reports the tuple count.
func (r Result) NumRows() int { return r.rel.NumRows() }

// Row returns tuple i.
func (r Result) Row(i int) []Value { return r.rel.Tuples[i] }

// Columns returns the output column labels.
func (r Result) Columns() []string { return r.rel.Cols }

// --- Operation and query-tree builders -----------------------------------

func colIDs(tbl *Table, names []string) ([]schema.ColID, error) {
	out := make([]schema.ColID, len(names))
	for i, n := range names {
		id, ok := tbl.ColumnID(n)
		if !ok {
			return nil, fmt.Errorf("proteus: table %s has no column %q", tbl.Name, n)
		}
		out[i] = id
	}
	return out, nil
}

// InsertOp builds an insert operation.
func InsertOp(tbl *Table, id RowID, vals ...Value) query.Op {
	return query.Op{Kind: query.OpInsert, Table: tbl.ID, Row: id, Vals: vals}
}

// UpdateOp builds an update of named columns.
func UpdateOp(tbl *Table, id RowID, set map[string]Value) (query.Op, error) {
	op := query.Op{Kind: query.OpUpdate, Table: tbl.ID, Row: id}
	for name, v := range set {
		cid, ok := tbl.ColumnID(name)
		if !ok {
			return op, fmt.Errorf("proteus: table %s has no column %q", tbl.Name, name)
		}
		op.Cols = append(op.Cols, cid)
		op.Vals = append(op.Vals, v)
	}
	return op, nil
}

// DeleteOp builds a delete operation.
func DeleteOp(tbl *Table, id RowID) query.Op {
	return query.Op{Kind: query.OpDelete, Table: tbl.ID, Row: id}
}

// ReadOp builds a keyed read of named columns (panics on unknown columns;
// use colIDs-based helpers for dynamic names).
func ReadOp(tbl *Table, id RowID, cols ...string) query.Op {
	ids, err := colIDs(tbl, cols)
	if err != nil {
		panic(err)
	}
	return query.Op{Kind: query.OpRead, Table: tbl.ID, Row: id, Cols: ids}
}

// Scan builds a full-table scan of named columns.
func Scan(tbl *Table, cols ...string) *query.Query {
	ids, err := colIDs(tbl, cols)
	if err != nil {
		panic(err)
	}
	return &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: ids}}
}

// WhereCol adds a predicate conjunct (col op value) to the query's scan
// leaf.
func WhereCol(q *query.Query, tbl *Table, col string, op storage.CmpOp, v Value) *query.Query {
	cid, ok := tbl.ColumnID(col)
	if !ok {
		panic(fmt.Sprintf("proteus: no column %q", col))
	}
	scan := findScan(q.Root)
	if scan == nil || scan.Table != tbl.ID {
		panic("proteus: WhereCol requires a scan of the same table")
	}
	scan.Pred = append(scan.Pred, storage.Cond{Col: cid, Op: op, Val: v})
	return q
}

// Comparison operators for WhereCol.
const (
	Eq = storage.CmpEq
	Ne = storage.CmpNe
	Lt = storage.CmpLt
	Le = storage.CmpLe
	Gt = storage.CmpGt
	Ge = storage.CmpGe
)

func findScan(n query.Node) *query.ScanNode {
	switch v := n.(type) {
	case *query.ScanNode:
		return v
	case *query.JoinNode:
		return findScan(v.Left)
	case *query.AggNode:
		return findScan(v.Child)
	}
	return nil
}

// aggOver wraps a query's root in an aggregate over one output position.
func aggOver(q *query.Query, tbl *Table, col string, fn exec.AggFunc) *query.Query {
	scan := findScan(q.Root)
	if scan == nil {
		panic("proteus: aggregate requires a scan query")
	}
	pos := -1
	if col != "" {
		cid, ok := tbl.ColumnID(col)
		if !ok {
			panic(fmt.Sprintf("proteus: no column %q", col))
		}
		for i, c := range scan.Cols {
			if c == cid {
				pos = i
			}
		}
		if pos < 0 {
			panic(fmt.Sprintf("proteus: column %q not in scan output", col))
		}
	}
	return &query.Query{Root: &query.AggNode{
		Child: q.Root,
		Aggs:  []exec.AggSpec{{Func: fn, Col: pos}},
	}}
}

// Sum aggregates SUM(col) over a scan query. The table is inferred from
// the query's leaf scan; col must be among the scanned columns.
func Sum(q *query.Query, tbl *Table, col string) *query.Query {
	return aggOver(q, tbl, col, exec.AggSum)
}

// Count aggregates COUNT(*) over a scan query.
func Count(q *query.Query, tbl *Table) *query.Query {
	return aggOver(q, tbl, "", exec.AggCount)
}

// Min aggregates MIN(col) over a scan query.
func Min(q *query.Query, tbl *Table, col string) *query.Query {
	return aggOver(q, tbl, col, exec.AggMin)
}

// Max aggregates MAX(col) over a scan query.
func Max(q *query.Query, tbl *Table, col string) *query.Query {
	return aggOver(q, tbl, col, exec.AggMax)
}

// Avg aggregates AVG(col) over a scan query.
func Avg(q *query.Query, tbl *Table, col string) *query.Query {
	return aggOver(q, tbl, col, exec.AggAvg)
}

// Join builds an inner equi-join of two scan queries on named columns.
func Join(left *query.Query, ltbl *Table, lcol string, right *query.Query, rtbl *Table, rcol string) *query.Query {
	ls, rs := findScan(left.Root), findScan(right.Root)
	if ls == nil || rs == nil {
		panic("proteus: Join requires scan queries")
	}
	lk, rk := -1, -1
	lcid, _ := ltbl.ColumnID(lcol)
	rcid, _ := rtbl.ColumnID(rcol)
	for i, c := range ls.Cols {
		if c == lcid {
			lk = i
		}
	}
	for i, c := range rs.Cols {
		if c == rcid {
			rk = i
		}
	}
	if lk < 0 || rk < 0 {
		panic("proteus: join keys must be among scanned columns")
	}
	return &query.Query{Root: &query.JoinNode{
		Left: left.Root, Right: right.Root, LeftKeyCol: lk, RightKeyCol: rk,
	}}
}

// GroupBy wraps the query root in a grouped aggregation: group positions
// and agg specs are positions into the child's output.
func GroupBy(q *query.Query, groupPositions []int, aggs []exec.AggSpec) *query.Query {
	return &query.Query{Root: &query.AggNode{Child: q.Root, GroupBy: groupPositions, Aggs: aggs}}
}

// AggSpec aliases the aggregate specification for GroupBy.
type AggSpec = exec.AggSpec

// Aggregate functions for GroupBy specs.
const (
	AggSum   = exec.AggSum
	AggCount = exec.AggCount
	AggMin   = exec.AggMin
	AggMax   = exec.AggMax
	AggAvg   = exec.AggAvg
)

// SiteCount reports the cluster's data-site count.
func (db *DB) SiteCount() int { return len(db.eng.Sites) }

// SiteID aliases the site identifier.
type SiteID = simnet.SiteID
