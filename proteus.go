// Package proteus is the public API of this reproduction of "Proteus:
// Autonomous Adaptive Storage for Mixed Workloads" (SIGMOD 2022): a
// distributed HTAP database engine that adaptively and autonomously
// selects per-partition storage layouts — row or column format, memory or
// disk tier, sort orders, compression, replication and mastership — from
// learned workload and cost models.
//
// A DB embeds a full simulated cluster: data sites with isolated OLTP,
// OLAP and parallel-scan worker pools, a redo-log broker, an interconnect
// model, and the adaptive storage advisor. Clients open sessions (strong
// session snapshot isolation) and submit keyed transactions or chainable
// analytical queries; every call takes a context controlling cancellation
// and deadlines:
//
//	db, _ := proteus.Open(proteus.Options{Sites: 3})
//	defer db.Close()
//
//	tbl, _ := db.CreateTable("orders", []proteus.Column{
//	    {Name: "id", Kind: proteus.Int64},
//	    {Name: "amount", Kind: proteus.Float64},
//	}, proteus.TableOptions{MaxRows: 1 << 20})
//
//	ctx := context.Background()
//	s := db.Session()
//	_ = s.Insert(ctx, tbl, 1, proteus.Int64Value(1), proteus.Float64Value(9.99))
//	sum, _ := s.QueryScalar(ctx, tbl.Scan("amount").Sum("amount"))
//
// Large scans can stream instead of materializing:
//
//	rows, _ := s.QueryRows(ctx, tbl.Scan("id", "amount").
//	    Where("amount", proteus.Gt, proteus.Float64Value(5)))
//	defer rows.Close()
//	for rows.Next() {
//	    fmt.Println(rows.Row())
//	}
//
// See the examples/ directory for complete programs and internal/
// experiments for the paper's evaluation suite.
package proteus

import (
	"context"
	"fmt"
	"time"

	"proteus/internal/admission"
	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/faults"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Kind aliases the value kinds.
type Kind = types.Kind

// Column kinds.
const (
	Int64   = types.KindInt64
	Float64 = types.KindFloat64
	String  = types.KindString
	Time    = types.KindTime
	Bool    = types.KindBool
)

// Value aliases the cell value type.
type Value = types.Value

// Value constructors.
var (
	Int64Value   = types.NewInt64
	Float64Value = types.NewFloat64
	StringValue  = types.NewString
	TimeValue    = types.NewTime
	BoolValue    = types.NewBool
)

// Column aliases the schema column definition.
type Column = schema.Column

// Table is a table handle: the schema definition plus the chainable query
// builder entry point (see Table.Scan in builder.go).
type Table struct {
	*schema.Table
}

// RowID aliases the primary-key type.
type RowID = schema.RowID

// Mode selects the storage architecture; the default is the adaptive
// Proteus mode. Baseline architectures from the paper's evaluation are
// available for comparison.
type Mode = cluster.Mode

// Architecture modes.
const (
	Adaptive    = cluster.ModeProteus
	RowStore    = cluster.ModeRowStore
	ColumnStore = cluster.ModeColumnStore
	Janus       = cluster.ModeJanus
	TiDBLike    = cluster.ModeTiDB
)

// Options configures a DB.
type Options struct {
	// Sites is the data-site count (default 2).
	Sites int
	// Mode selects the architecture (default Adaptive).
	Mode Mode
	// Cluster, when non-nil, overrides every knob (advanced use).
	Cluster *cluster.Config
}

// DB is an open Proteus cluster.
type DB struct {
	eng *cluster.Engine
}

// Open starts a cluster.
func Open(o Options) (*DB, error) {
	cfg := cluster.DefaultConfig()
	if o.Cluster != nil {
		cfg = *o.Cluster
	} else {
		if o.Sites > 0 {
			cfg.NumSites = o.Sites
		}
		cfg.Mode = o.Mode
	}
	return &DB{eng: cluster.New(cfg)}, nil
}

// Close shuts the cluster down.
func (db *DB) Close() { db.eng.Close() }

// Engine exposes the underlying cluster for advanced use (experiments,
// layout inspection).
func (db *DB) Engine() *cluster.Engine { return db.eng }

// TableOptions refines table creation.
type TableOptions struct {
	// MaxRows bounds the row-id space (default 1<<30).
	MaxRows RowID
	// Partitions is the initial horizontal partition count (default one
	// per site).
	Partitions int
	// ReplicateAll installs a replica at every site (read-only tables).
	ReplicateAll bool
}

// CreateTable defines a table.
func (db *DB) CreateTable(name string, cols []Column, opts TableOptions) (*Table, error) {
	parts := opts.Partitions
	if parts <= 0 {
		parts = len(db.eng.Sites)
	}
	t, err := db.eng.CreateTable(cluster.TableSpec{
		Name: name, Cols: cols, MaxRows: opts.MaxRows,
		Partitions: parts, ReplicateAll: opts.ReplicateAll,
	})
	if err != nil {
		return nil, err
	}
	return &Table{Table: t}, nil
}

// Load bulk-loads rows (id, values...) into a table.
func (db *DB) Load(ctx context.Context, tbl *Table, rows []Row) error {
	out := make([]schema.Row, len(rows))
	for i, r := range rows {
		out[i] = schema.Row{ID: r.ID, Vals: r.Values}
	}
	return db.eng.LoadRows(ctx, tbl.Table.ID, out)
}

// Row is one tuple for bulk loading.
type Row struct {
	ID     RowID
	Values []Value
}

// LayoutReport summarizes the cluster's current physical design.
func (db *DB) LayoutReport() map[string]int { return db.eng.LayoutCounts() }

// Session is one client connection with strong session snapshot isolation:
// every transaction observes the effects of the session's previous reads
// and writes.
type Session struct {
	db *DB
	s  *cluster.Session
}

// Session opens a client session.
func (db *DB) Session() *Session {
	return &Session{db: db, s: db.eng.NewSession()}
}

// Exec runs a multi-operation transaction built with the Op helpers.
// ctx bounds the attempt (including retries) and cancels it early.
func (s *Session) Exec(ctx context.Context, ops ...query.Op) (Result, error) {
	rel, err := s.db.eng.ExecuteTxn(ctx, s.s, &query.Txn{Ops: ops})
	return Result{rel: rel}, err
}

// Insert adds one row with values for every column.
func (s *Session) Insert(ctx context.Context, tbl *Table, id RowID, vals ...Value) error {
	if len(vals) != tbl.NumColumns() {
		return fmt.Errorf("proteus: %d values for %d columns", len(vals), tbl.NumColumns())
	}
	_, err := s.Exec(ctx, InsertOp(tbl, id, vals...))
	return err
}

// Update overwrites named columns of one row.
func (s *Session) Update(ctx context.Context, tbl *Table, id RowID, set map[string]Value) error {
	op, err := UpdateOp(tbl, id, set)
	if err != nil {
		return err
	}
	_, err = s.Exec(ctx, op)
	return err
}

// Delete removes one row.
func (s *Session) Delete(ctx context.Context, tbl *Table, id RowID) error {
	_, err := s.Exec(ctx, DeleteOp(tbl, id))
	return err
}

// Get reads named columns of one row; found reports existence.
func (s *Session) Get(ctx context.Context, tbl *Table, id RowID, cols ...string) ([]Value, bool, error) {
	ids, err := colIDs(tbl, cols)
	if err != nil {
		return nil, false, err
	}
	res, err := s.Exec(ctx, query.Op{Kind: query.OpRead, Table: tbl.Table.ID, Row: id, Cols: ids})
	if err != nil {
		return nil, false, err
	}
	if len(res.rel.Tuples) == 0 || res.rel.Tuples[0] == nil {
		return nil, false, nil
	}
	return res.rel.Tuples[0], true, nil
}

// Query executes an analytical query — a builder chain from Table.Scan or
// a prebuilt *query.Query — and materializes the result. Cancelling ctx
// aborts the distributed scan, closing its morsel feeds.
func (s *Session) Query(ctx context.Context, q Queryable) (Result, error) {
	rel, err := s.db.eng.ExecuteQuery(ctx, s.s, q.Build())
	return Result{rel: rel}, err
}

// QueryRows executes an analytical query and streams the result rows.
// The caller must Close the cursor (or drain it) to release the scan.
func (s *Session) QueryRows(ctx context.Context, q Queryable) (*Rows, error) {
	cur, err := s.db.eng.ExecuteQueryStream(ctx, s.s, q.Build())
	if err != nil {
		return nil, err
	}
	return &Rows{cur: cur}, nil
}

// QueryScalar executes a query expected to yield a single value.
func (s *Session) QueryScalar(ctx context.Context, q Queryable) (Value, error) {
	res, err := s.Query(ctx, q)
	if err != nil {
		return types.Null(), err
	}
	if len(res.rel.Tuples) != 1 || len(res.rel.Tuples[0]) < 1 {
		return types.Null(), fmt.Errorf("proteus: query returned %d rows", len(res.rel.Tuples))
	}
	return res.rel.Tuples[0][0], nil
}

// Result is a materialized query or read result.
type Result struct {
	rel exec.Rel
}

// NumRows reports the tuple count.
func (r Result) NumRows() int { return r.rel.NumRows() }

// Row returns tuple i.
func (r Result) Row(i int) []Value { return r.rel.Tuples[i] }

// Columns returns the output column labels.
func (r Result) Columns() []string { return r.rel.Cols }

// --- Operation builders --------------------------------------------------

func colIDs(tbl *Table, names []string) ([]schema.ColID, error) {
	out := make([]schema.ColID, len(names))
	for i, n := range names {
		id, ok := tbl.ColumnID(n)
		if !ok {
			return nil, fmt.Errorf("proteus: table %s has no column %q", tbl.Name, n)
		}
		out[i] = id
	}
	return out, nil
}

// InsertOp builds an insert operation.
func InsertOp(tbl *Table, id RowID, vals ...Value) query.Op {
	return query.Op{Kind: query.OpInsert, Table: tbl.Table.ID, Row: id, Vals: vals}
}

// UpdateOp builds an update of named columns.
func UpdateOp(tbl *Table, id RowID, set map[string]Value) (query.Op, error) {
	op := query.Op{Kind: query.OpUpdate, Table: tbl.Table.ID, Row: id}
	for name, v := range set {
		cid, ok := tbl.ColumnID(name)
		if !ok {
			return op, fmt.Errorf("proteus: table %s has no column %q", tbl.Name, name)
		}
		op.Cols = append(op.Cols, cid)
		op.Vals = append(op.Vals, v)
	}
	return op, nil
}

// DeleteOp builds a delete operation.
func DeleteOp(tbl *Table, id RowID) query.Op {
	return query.Op{Kind: query.OpDelete, Table: tbl.Table.ID, Row: id}
}

// ReadOp builds a keyed read of named columns (panics on unknown columns;
// use colIDs-based helpers for dynamic names).
func ReadOp(tbl *Table, id RowID, cols ...string) query.Op {
	ids, err := colIDs(tbl, cols)
	if err != nil {
		panic(err)
	}
	return query.Op{Kind: query.OpRead, Table: tbl.Table.ID, Row: id, Cols: ids}
}

// Comparison operators for Where.
const (
	Eq = storage.CmpEq
	Ne = storage.CmpNe
	Lt = storage.CmpLt
	Le = storage.CmpLe
	Gt = storage.CmpGt
	Ge = storage.CmpGe
)

// AggSpec aliases the aggregate specification for GroupBy.
type AggSpec = exec.AggSpec

// Aggregate functions for GroupBy specs.
const (
	AggSum   = exec.AggSum
	AggCount = exec.AggCount
	AggMin   = exec.AggMin
	AggMax   = exec.AggMax
	AggAvg   = exec.AggAvg
)

// SiteCount reports the cluster's data-site count.
func (db *DB) SiteCount() int { return len(db.eng.Sites) }

// SiteID aliases the site identifier.
type SiteID = simnet.SiteID

// --- Multi-tenant admission control --------------------------------------

// ErrOverload is returned (possibly wrapped) when the admission
// controller sheds a request instead of queuing it: the tenant's token
// bucket ran dry with a full wait queue, or a backlog guard tripped.
// Match with errors.Is; a shed request was never executed — a shed write
// is never acknowledged. Use RetryAfter for the controller's hint on
// when retrying has a chance of admission.
var ErrOverload = faults.ErrOverload

// DefaultTenant is the tenant untagged work is charged against.
const DefaultTenant = admission.DefaultTenant

// WithTenant tags a context with the tenant the request is charged
// against under token-bucket admission. Untagged contexts share the
// DefaultTenant bucket.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return admission.WithTenant(ctx, tenant)
}

// Tenant reports the tenant a context's requests are charged against.
func Tenant(ctx context.Context) string { return admission.TenantFrom(ctx) }

// RetryAfter extracts the admission controller's retry hint from a shed
// error; ok is false when err is not an overload shed.
func RetryAfter(err error) (d time.Duration, ok bool) { return faults.RetryAfterHint(err) }
