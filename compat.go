package proteus

import (
	"fmt"

	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/storage"
)

// Deprecated free-function query builders, kept as thin wrappers over the
// chainable builder (builder.go) for one release. New code should write
//
//	tbl.Scan("a", "b").Where("a", proteus.Gt, v).Sum("b")
//
// instead of Sum(WhereCol(Scan(tbl, "a", "b"), tbl, "a", Gt, v), tbl, "b").

// Scan builds a full-table scan of named columns.
//
// Deprecated: use Table.Scan, the chainable builder entry point.
func Scan(tbl *Table, cols ...string) *query.Query {
	return tbl.Scan(cols...).Build()
}

// WhereCol adds a predicate conjunct (col op value) to the query's scan
// leaf.
//
// Deprecated: use ScanBuilder.Where.
func WhereCol(q *query.Query, tbl *Table, col string, op storage.CmpOp, v Value) *query.Query {
	cid, ok := tbl.ColumnID(col)
	if !ok {
		panic(fmt.Sprintf("proteus: no column %q", col))
	}
	scan := findScan(q.Root)
	if scan == nil || scan.Table != tbl.Table.ID {
		panic("proteus: WhereCol requires a scan of the same table")
	}
	scan.Pred = append(scan.Pred, storage.Cond{Col: cid, Op: op, Val: v})
	return q
}

func findScan(n query.Node) *query.ScanNode {
	switch v := n.(type) {
	case *query.ScanNode:
		return v
	case *query.JoinNode:
		return findScan(v.Left)
	case *query.AggNode:
		return findScan(v.Child)
	}
	return nil
}

// aggOver wraps a query's root in an aggregate over one output position.
func aggOver(q *query.Query, tbl *Table, col string, fn exec.AggFunc) *query.Query {
	scan := findScan(q.Root)
	if scan == nil {
		panic("proteus: aggregate requires a scan query")
	}
	pos := -1
	if col != "" {
		cid, ok := tbl.ColumnID(col)
		if !ok {
			panic(fmt.Sprintf("proteus: no column %q", col))
		}
		for i, c := range scan.Cols {
			if c == cid {
				pos = i
			}
		}
		if pos < 0 {
			panic(fmt.Sprintf("proteus: column %q not in scan output", col))
		}
	}
	return &query.Query{
		Root:  &query.AggNode{Child: q.Root, Aggs: []exec.AggSpec{{Func: fn, Col: pos}}},
		Limit: q.Limit,
	}
}

// Sum aggregates SUM(col) over a scan query.
//
// Deprecated: use ScanBuilder.Sum.
func Sum(q *query.Query, tbl *Table, col string) *query.Query {
	return aggOver(q, tbl, col, exec.AggSum)
}

// Count aggregates COUNT(*) over a scan query.
//
// Deprecated: use ScanBuilder.Count.
func Count(q *query.Query, tbl *Table) *query.Query {
	return aggOver(q, tbl, "", exec.AggCount)
}

// Min aggregates MIN(col) over a scan query.
//
// Deprecated: use ScanBuilder.Min.
func Min(q *query.Query, tbl *Table, col string) *query.Query {
	return aggOver(q, tbl, col, exec.AggMin)
}

// Max aggregates MAX(col) over a scan query.
//
// Deprecated: use ScanBuilder.Max.
func Max(q *query.Query, tbl *Table, col string) *query.Query {
	return aggOver(q, tbl, col, exec.AggMax)
}

// Avg aggregates AVG(col) over a scan query.
//
// Deprecated: use ScanBuilder.Avg.
func Avg(q *query.Query, tbl *Table, col string) *query.Query {
	return aggOver(q, tbl, col, exec.AggAvg)
}

// Join builds an inner equi-join of two scan queries on named columns.
//
// Deprecated: use ScanBuilder.Join.
func Join(left *query.Query, ltbl *Table, lcol string, right *query.Query, rtbl *Table, rcol string) *query.Query {
	ls, rs := findScan(left.Root), findScan(right.Root)
	if ls == nil || rs == nil {
		panic("proteus: Join requires scan queries")
	}
	lk, rk := -1, -1
	lcid, _ := ltbl.ColumnID(lcol)
	rcid, _ := rtbl.ColumnID(rcol)
	for i, c := range ls.Cols {
		if c == lcid {
			lk = i
		}
	}
	for i, c := range rs.Cols {
		if c == rcid {
			rk = i
		}
	}
	if lk < 0 || rk < 0 {
		panic("proteus: join keys must be among scanned columns")
	}
	return &query.Query{Root: &query.JoinNode{
		Left: left.Root, Right: right.Root, LeftKeyCol: lk, RightKeyCol: rk,
	}}
}

// GroupBy wraps the query root in a grouped aggregation: group positions
// and agg specs are positions into the child's output.
//
// Deprecated: use ScanBuilder.GroupBy.
func GroupBy(q *query.Query, groupPositions []int, aggs []exec.AggSpec) *query.Query {
	return &query.Query{Root: &query.AggNode{Child: q.Root, GroupBy: groupPositions, Aggs: aggs}, Limit: q.Limit}
}
