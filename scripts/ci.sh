#!/usr/bin/env bash
# ci.sh — the repository's check pipeline (also `make check`):
# vet, build, the full test suite, then the race detector over the
# concurrency-heavy packages (engine, sites, interconnect, log broker,
# locking, replication, metrics).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== colstore encoding fuzz corpus (seeds only, -count=1)"
# Replays the checked-in round-trip corpus (testdata/fuzz/FuzzColRoundTrip)
# without cached results; `go test -fuzz FuzzColRoundTrip ./internal/colstore/`
# explores further locally.
go test -run FuzzColRoundTrip -count=1 ./internal/colstore/

echo "== scenario corpus on the virtual clock (gating)"
# Replays every scenarios/*.json on vclock.Sim (hours of virtual traffic
# in well under a minute of wall clock) and fails the pipeline on any
# invariant violation: acked-write loss, non-convergence, error-rate or
# latency bounds, shed minimums, wall-time budget.
go run ./cmd/proteus-sim run scenarios/*.json

echo "== go test -race (concurrency-heavy packages)"
go test -race -count=1 \
    ./internal/admission/ \
    ./internal/cluster/ \
    ./internal/vclock/ \
    ./internal/scenario/ \
    ./cmd/proteus-sim/ \
    ./internal/site/ \
    ./internal/simnet/ \
    ./internal/redolog/ \
    ./internal/txn/ \
    ./internal/replication/ \
    ./internal/faults/ \
    ./internal/obs/ \
    ./internal/exec/ \
    ./internal/colstore/ \
    ./internal/rowstore/ \
    ./internal/workload/...

echo "== scan benchmark (non-gating)"
# Regenerates BENCH_scan.json (morsel executor vs legacy path). Numbers are
# informational on shared CI hardware; a failure here does not gate the run.
go run ./cmd/proteus-bench -exp scan -scale quick || echo "scan benchmark failed (non-gating)"

echo "== oltp commit-pipeline benchmark (non-gating)"
# Regenerates BENCH_oltp.json (group commit vs serial inline commit) and
# prints the commit-path microbenchmarks. Informational on shared CI
# hardware; a failure here does not gate the run.
go run ./cmd/proteus-bench -exp oltp -scale quick || echo "oltp benchmark failed (non-gating)"
go test -run XXX -bench 'BenchmarkTxn(Group|Serial)Commit' -benchtime 0.5s ./internal/cluster/ || echo "txn benchmarks failed (non-gating)"

echo "== CH-benCHmark smoke (non-gating)"
# Regenerates BENCH_chbench.json (batch join/group-by engine vs the legacy
# row engine over the CH-benCHmark query mix, plus a forced-spill run).
# The experiment hard-fails if the two engines' answers ever diverge or if
# the spilled join returns wrong rows; the speedups themselves are
# informational on shared CI hardware, so the run does not gate. Set
# PROTEUS_CHBENCH_FULL=1 to run the full-scale matrix instead (minutes,
# not seconds; this is what the committed BENCH_chbench.json comes from).
if [[ "${PROTEUS_CHBENCH_FULL:-0}" == "1" ]]; then
    go run ./cmd/proteus-bench -exp chbench -scale full || echo "chbench failed (non-gating)"
else
    go run ./cmd/proteus-bench -exp chbench -scale quick || echo "chbench failed (non-gating)"
fi

echo "== overload smoke (non-gating)"
# Regenerates BENCH_overload.json and exercises the admission front end at
# 10x capacity. The experiment hard-fails on a shed without the typed
# ErrOverload/RetryAfter contract or on any acked-write loss; the p99 QoS
# ratio is informational on shared CI hardware, so the run does not gate.
go run ./cmd/proteus-bench -exp overload -scale quick || echo "overload smoke failed (non-gating)"

echo "ok"
