package proteus

import (
	"context"
	"sort"
	"testing"

	"proteus/internal/exec"
	"proteus/internal/types"
)

// The deprecated free-function builders must stay observationally identical
// to the chainable builder now that both execute over the columnar batch
// path. Each test builds the same logical query both ways and compares
// results exactly (both run the same plan, so even float aggregates match
// bit-for-bit).

func runQuery(t *testing.T, s *Session, q Queryable) [][]Value {
	t.Helper()
	res, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]Value, res.NumRows())
	for i := range out {
		out[i] = append([]Value(nil), res.Row(i)...)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if c := types.Compare(out[i][k], out[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

func sameResults(t *testing.T, name string, got, want [][]Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: width %d, want %d", name, i, len(got[i]), len(want[i]))
		}
		for k := range want[i] {
			if types.Compare(got[i][k], want[i][k]) != 0 {
				t.Fatalf("%s row %d col %d: %v, want %v", name, i, k, got[i][k], want[i][k])
			}
		}
	}
}

func TestCompatScanWhereMatchesBuilder(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	old := WhereCol(Scan(tbl, "id", "amount"), tbl, "amount", Ge, Float64Value(40))
	neu := tbl.Scan("id", "amount").Where("amount", Ge, Float64Value(40))
	got, want := runQuery(t, s, old), runQuery(t, s, neu)
	if len(got) != 60 {
		t.Fatalf("rows = %d, want 60", len(got))
	}
	sameResults(t, "scan-where", got, want)
}

func TestCompatAggregatesMatchBuilder(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	cases := []struct {
		name string
		old  Queryable
		neu  Queryable
	}{
		{"sum", Sum(WhereCol(Scan(tbl, "amount"), tbl, "region", Eq, Int64Value(2)), tbl, "amount"),
			tbl.Scan("amount").Where("region", Eq, Int64Value(2)).Sum("amount")},
		{"count", Count(Scan(tbl, "id"), tbl),
			tbl.Scan("id").Count()},
		{"min", Min(Scan(tbl, "amount"), tbl, "amount"),
			tbl.Scan("amount").Min("amount")},
		{"max", Max(Scan(tbl, "amount"), tbl, "amount"),
			tbl.Scan("amount").Max("amount")},
		{"avg", Avg(WhereCol(Scan(tbl, "amount"), tbl, "amount", Lt, Float64Value(50)), tbl, "amount"),
			tbl.Scan("amount").Where("amount", Lt, Float64Value(50)).Avg("amount")},
	}
	for _, tc := range cases {
		got, want := runQuery(t, s, tc.old), runQuery(t, s, tc.neu)
		if len(got) != 1 {
			t.Fatalf("%s: %d rows", tc.name, len(got))
		}
		sameResults(t, tc.name, got, want)
	}
}

func TestCompatJoinMatchesBuilder(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	dim, err := db.CreateTable("regions2", []Column{
		{Name: "rid", Kind: Int64},
		{Name: "weight", Kind: Float64},
	}, TableOptions{MaxRows: 100, Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := int64(0); i < 4; i++ {
		rows = append(rows, Row{ID: RowID(i), Values: []Value{Int64Value(i), Float64Value(float64(i) * 10)}})
	}
	if err := db.Load(context.Background(), dim, rows); err != nil {
		t.Fatal(err)
	}
	old := Join(Scan(tbl, "id", "region"), tbl, "region", Scan(dim, "rid", "weight"), dim, "rid")
	neu := tbl.Scan("id", "region").Join(dim.Scan("rid", "weight"), "region", "rid")
	got, want := runQuery(t, s, old), runQuery(t, s, neu)
	if len(got) != 100 {
		t.Fatalf("join rows = %d, want 100", len(got))
	}
	sameResults(t, "join", got, want)
}

func TestCompatGroupByMatchesBuilder(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	aggs := []exec.AggSpec{{Func: AggCount}, {Func: AggSum, Col: 1}, {Func: AggAvg, Col: 1}}
	old := GroupBy(Scan(tbl, "region", "amount"), []int{0}, aggs)
	neu := tbl.Scan("region", "amount").GroupBy([]int{0}, aggs)
	got, want := runQuery(t, s, old), runQuery(t, s, neu)
	if len(got) != 4 {
		t.Fatalf("groups = %d, want 4", len(got))
	}
	sameResults(t, "groupby", got, want)
}
