package proteus

import (
	"fmt"

	"proteus/internal/cluster"
)

// Rows is a streaming result cursor in the database/sql style. For
// scan-shaped queries the rows arrive incrementally from the morsel
// executor while sites are still scanning; aggregations and joins
// materialize first and the cursor iterates the result. Always Close a
// cursor (or drain it with Next) — Close cancels the distributed scan and
// waits for its workers, so an abandoned cursor leaks no goroutines.
type Rows struct {
	cur *cluster.RowCursor
}

// Columns returns the result column labels.
func (r *Rows) Columns() []string { return r.cur.Cols() }

// Next advances to the next row, reporting whether one is available.
// After it returns false, check Err for a terminal failure.
func (r *Rows) Next() bool { return r.cur.Next() }

// Scan copies the current row's values into dest, one pointer per
// result column. Valid only after Next returned true.
func (r *Rows) Scan(dest ...*Value) error {
	row := r.cur.Row()
	if len(dest) != len(row) {
		return fmt.Errorf("proteus: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i := range dest {
		*dest[i] = row[i]
	}
	return nil
}

// Row returns the current row's values directly. The slice is owned by
// the cursor until the following Next call.
func (r *Rows) Row() []Value { return r.cur.Row() }

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.cur.Err() }

// Close cancels the query and releases the cursor; safe to call more
// than once.
func (r *Rows) Close() error { return r.cur.Close() }
