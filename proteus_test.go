package proteus

import (
	"testing"
)

func openTest(t *testing.T) (*DB, *Table) {
	t.Helper()
	db, err := Open(Options{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	tbl, err := db.CreateTable("orders", []Column{
		{Name: "id", Kind: Int64},
		{Name: "region", Kind: Int64},
		{Name: "amount", Kind: Float64},
	}, TableOptions{MaxRows: 10000, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, Row{ID: RowID(i), Values: []Value{
			Int64Value(i), Int64Value(i % 4), Float64Value(float64(i)),
		}})
	}
	if err := db.Load(tbl, rows); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestCrudRoundTrip(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()

	if err := s.Insert(tbl, 500, Int64Value(500), Int64Value(1), Float64Value(12.5)); err != nil {
		t.Fatal(err)
	}
	vals, ok, err := s.Get(tbl, 500, "amount")
	if err != nil || !ok || vals[0].Float() != 12.5 {
		t.Fatalf("get: %v %v %v", vals, ok, err)
	}
	if err := s.Update(tbl, 500, map[string]Value{"amount": Float64Value(99)}); err != nil {
		t.Fatal(err)
	}
	vals, _, _ = s.Get(tbl, 500, "amount")
	if vals[0].Float() != 99 {
		t.Fatalf("after update: %v", vals)
	}
	if err := s.Delete(tbl, 500); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(tbl, 500, "id"); ok {
		t.Fatal("deleted row still visible")
	}
	// Error paths.
	if err := s.Insert(tbl, 501, Int64Value(1)); err == nil {
		t.Error("short insert accepted")
	}
	if _, _, err := s.Get(tbl, 1, "nope"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestScalarAggregates(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	sum, err := s.QueryScalar(Sum(Scan(tbl, "amount"), tbl, "amount"))
	if err != nil || sum.Float() != 4950 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
	cnt, err := s.QueryScalar(Count(Scan(tbl, "id"), tbl))
	if err != nil || cnt.Int() != 100 {
		t.Fatalf("count = %v, %v", cnt, err)
	}
	mx, err := s.QueryScalar(Max(Scan(tbl, "amount"), tbl, "amount"))
	if err != nil || mx.Float() != 99 {
		t.Fatalf("max = %v, %v", mx, err)
	}
	avg, err := s.QueryScalar(Avg(Scan(tbl, "amount"), tbl, "amount"))
	if err != nil || avg.Float() != 49.5 {
		t.Fatalf("avg = %v, %v", avg, err)
	}
}

func TestWherePredicate(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	q := Scan(tbl, "amount")
	q = WhereCol(q, tbl, "amount", Ge, Float64Value(90))
	cnt, err := s.QueryScalar(Count(q, tbl))
	if err != nil || cnt.Int() != 10 {
		t.Fatalf("count >= 90: %v %v", cnt, err)
	}
}

func TestGroupByQuery(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	q := GroupBy(Scan(tbl, "region", "amount"), []int{0}, []AggSpec{{Func: AggCount}, {Func: AggSum, Col: 1}})
	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	for i := 0; i < res.NumRows(); i++ {
		if res.Row(i)[1].Int() != 25 {
			t.Errorf("group %v count = %v", res.Row(i)[0], res.Row(i)[1])
		}
	}
}

func TestJoinBuilder(t *testing.T) {
	db, tbl := openTest(t)
	dim, err := db.CreateTable("regions", []Column{
		{Name: "rid", Kind: Int64},
		{Name: "name", Kind: String},
	}, TableOptions{MaxRows: 10, Partitions: 1, ReplicateAll: true})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := int64(0); i < 4; i++ {
		rows = append(rows, Row{ID: RowID(i), Values: []Value{Int64Value(i), StringValue("r")}})
	}
	if err := db.Load(dim, rows); err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	q := Join(Scan(tbl, "region", "amount"), tbl, "region", Scan(dim, "rid"), dim, "rid")
	q = GroupBy(q, nil, []AggSpec{{Func: AggCount}})
	res, err := s.Query(q)
	if err != nil || res.NumRows() != 1 || res.Row(0)[0].Int() != 100 {
		t.Fatalf("join count: %v %v", res, err)
	}
}

func TestSessionReadYourWrites(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	for i := 0; i < 10; i++ {
		if err := s.Update(tbl, 1, map[string]Value{"amount": Float64Value(float64(i))}); err != nil {
			t.Fatal(err)
		}
		vals, _, err := s.Get(tbl, 1, "amount")
		if err != nil || vals[0].Float() != float64(i) {
			t.Fatalf("iteration %d: read %v, %v", i, vals, err)
		}
	}
}

func TestLayoutReportAndModes(t *testing.T) {
	db, tbl := openTest(t)
	_ = tbl
	rep := db.LayoutReport()
	total := 0
	for _, n := range rep {
		total += n
	}
	if total == 0 {
		t.Error("no layouts reported")
	}
	if db.SiteCount() != 2 {
		t.Error("site count wrong")
	}

	for _, m := range []Mode{RowStore, ColumnStore, Janus, TiDBLike} {
		db2, err := Open(Options{Sites: 2, Mode: m})
		if err != nil {
			t.Fatal(err)
		}
		db2.Close()
	}
}
