package proteus

import (
	"context"
	"testing"
)

func openTest(t *testing.T) (*DB, *Table) {
	t.Helper()
	db, err := Open(Options{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	tbl, err := db.CreateTable("orders", []Column{
		{Name: "id", Kind: Int64},
		{Name: "region", Kind: Int64},
		{Name: "amount", Kind: Float64},
	}, TableOptions{MaxRows: 10000, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, Row{ID: RowID(i), Values: []Value{
			Int64Value(i), Int64Value(i % 4), Float64Value(float64(i)),
		}})
	}
	if err := db.Load(context.Background(), tbl, rows); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestCrudRoundTrip(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()

	if err := s.Insert(context.Background(), tbl, 500, Int64Value(500), Int64Value(1), Float64Value(12.5)); err != nil {
		t.Fatal(err)
	}
	vals, ok, err := s.Get(context.Background(), tbl, 500, "amount")
	if err != nil || !ok || vals[0].Float() != 12.5 {
		t.Fatalf("get: %v %v %v", vals, ok, err)
	}
	if err := s.Update(context.Background(), tbl, 500, map[string]Value{"amount": Float64Value(99)}); err != nil {
		t.Fatal(err)
	}
	vals, _, _ = s.Get(context.Background(), tbl, 500, "amount")
	if vals[0].Float() != 99 {
		t.Fatalf("after update: %v", vals)
	}
	if err := s.Delete(context.Background(), tbl, 500); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(context.Background(), tbl, 500, "id"); ok {
		t.Fatal("deleted row still visible")
	}
	// Error paths.
	if err := s.Insert(context.Background(), tbl, 501, Int64Value(1)); err == nil {
		t.Error("short insert accepted")
	}
	if _, _, err := s.Get(context.Background(), tbl, 1, "nope"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestScalarAggregates(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	sum, err := s.QueryScalar(context.Background(), tbl.Scan("amount").Sum("amount"))
	if err != nil || sum.Float() != 4950 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
	cnt, err := s.QueryScalar(context.Background(), tbl.Scan("id").Count())
	if err != nil || cnt.Int() != 100 {
		t.Fatalf("count = %v, %v", cnt, err)
	}
	mx, err := s.QueryScalar(context.Background(), tbl.Scan("amount").Max("amount"))
	if err != nil || mx.Float() != 99 {
		t.Fatalf("max = %v, %v", mx, err)
	}
	avg, err := s.QueryScalar(context.Background(), tbl.Scan("amount").Avg("amount"))
	if err != nil || avg.Float() != 49.5 {
		t.Fatalf("avg = %v, %v", avg, err)
	}
}

func TestWherePredicate(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	cnt, err := s.QueryScalar(context.Background(), tbl.Scan("amount").
		Where("amount", Ge, Float64Value(90)).
		Count())
	if err != nil || cnt.Int() != 10 {
		t.Fatalf("count >= 90: %v %v", cnt, err)
	}
}

func TestGroupByQuery(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	q := tbl.Scan("region", "amount").GroupBy([]int{0}, []AggSpec{{Func: AggCount}, {Func: AggSum, Col: 1}})
	res, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	for i := 0; i < res.NumRows(); i++ {
		if res.Row(i)[1].Int() != 25 {
			t.Errorf("group %v count = %v", res.Row(i)[0], res.Row(i)[1])
		}
	}
}

func TestJoinBuilder(t *testing.T) {
	db, tbl := openTest(t)
	dim, err := db.CreateTable("regions", []Column{
		{Name: "rid", Kind: Int64},
		{Name: "name", Kind: String},
	}, TableOptions{MaxRows: 10, Partitions: 1, ReplicateAll: true})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := int64(0); i < 4; i++ {
		rows = append(rows, Row{ID: RowID(i), Values: []Value{Int64Value(i), StringValue("r")}})
	}
	if err := db.Load(context.Background(), dim, rows); err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	q := tbl.Scan("region", "amount").
		Join(dim.Scan("rid"), "region", "rid").
		GroupBy(nil, []AggSpec{{Func: AggCount}})
	res, err := s.Query(context.Background(), q)
	if err != nil || res.NumRows() != 1 || res.Row(0)[0].Int() != 100 {
		t.Fatalf("join count: %v %v", res, err)
	}
}

func TestQueryRowsStreaming(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()

	rows, err := s.QueryRows(context.Background(), tbl.Scan("id", "amount").
		Where("amount", Ge, Float64Value(50)))
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Columns(); len(got) != 2 {
		t.Fatalf("columns = %v", got)
	}
	n := 0
	var id, amount Value
	for rows.Next() {
		if err := rows.Scan(&id, &amount); err != nil {
			t.Fatal(err)
		}
		if amount.Float() < 50 {
			t.Fatalf("row %v violates predicate", amount)
		}
		n++
	}
	if rows.Err() != nil || n != 50 {
		t.Fatalf("streamed %d rows, err %v", n, rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// Abandoning a cursor mid-stream must be safe.
	rows, err = s.QueryRows(context.Background(), tbl.Scan("id"))
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// Builder LIMIT flows through to the cursor.
	rows, err = s.QueryRows(context.Background(), tbl.Scan("id").Limit(7))
	if err != nil {
		t.Fatal(err)
	}
	n = 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 7 {
		t.Fatalf("limited stream = %d rows, want 7", n)
	}
}

func TestDeprecatedBuildersMatchChainable(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	old, err := s.QueryScalar(context.Background(),
		Sum(WhereCol(Scan(tbl, "amount"), tbl, "amount", Ge, Float64Value(90)), tbl, "amount"))
	if err != nil {
		t.Fatal(err)
	}
	new_, err := s.QueryScalar(context.Background(),
		tbl.Scan("amount").Where("amount", Ge, Float64Value(90)).Sum("amount"))
	if err != nil {
		t.Fatal(err)
	}
	if old.Float() != new_.Float() || old.Float() != 945 {
		t.Fatalf("deprecated %v vs chainable %v, want 945", old, new_)
	}
}

func TestSessionReadYourWrites(t *testing.T) {
	db, tbl := openTest(t)
	s := db.Session()
	for i := 0; i < 10; i++ {
		if err := s.Update(context.Background(), tbl, 1, map[string]Value{"amount": Float64Value(float64(i))}); err != nil {
			t.Fatal(err)
		}
		vals, _, err := s.Get(context.Background(), tbl, 1, "amount")
		if err != nil || vals[0].Float() != float64(i) {
			t.Fatalf("iteration %d: read %v, %v", i, vals, err)
		}
	}
}

func TestLayoutReportAndModes(t *testing.T) {
	db, tbl := openTest(t)
	_ = tbl
	rep := db.LayoutReport()
	total := 0
	for _, n := range rep {
		total += n
	}
	if total == 0 {
		t.Error("no layouts reported")
	}
	if db.SiteCount() != 2 {
		t.Error("site count wrong")
	}

	for _, m := range []Mode{RowStore, ColumnStore, Janus, TiDBLike} {
		db2, err := Open(Options{Sites: 2, Mode: m})
		if err != nil {
			t.Fatal(err)
		}
		db2.Close()
	}
}
